"""Sharded serving tests: the gather-free frame path and its farm fan-out.

``render_frame_sharded`` composites one paged shard at a time through the
fragment transmittance merge; it must match the joint ``render_frame`` of
the same store to compositing-rounding precision, the farmed execution
must be bit-identical to inline, and the published shared segment must
carry only the geometric block + shard ids — never the packed matrix.
"""

import numpy as np
import pytest

from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.render import RasterConfig, shutdown_raster_pools
from repro.serve import (
    FrameTask,
    LODSet,
    PagedServingStore,
    RenderFarm,
    default_serve_raster_config,
)
from repro.serve.farm import render_frame, render_frame_sharded

ATOL = 1e-9


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_raster_pools()


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=180, width=32, height=24,
            num_train_cameras=4, num_test_cameras=2,
            altitude=12.0, seed=9,
        )
    )


def budget(n, num_shards=4, shards_resident=1):
    worst = -(-n // num_shards)
    return layout.param_bytes(n, layout.GEOMETRIC_DIM) + (
        shards_resident * layout.param_bytes(worst, layout.NON_GEOMETRIC_DIM)
    )


@pytest.fixture(scope="module")
def paged(scene):
    n = scene.oracle.num_gaussians
    return PagedServingStore.from_model(scene.oracle, budget(n))


def make_tasks(scene, lod_set, config=None):
    # full precision by default: the strict 1e-9 parity bound compares
    # two different compositing algorithms, which float32 blurs to ~2e-4
    config = config or RasterConfig()
    return [
        FrameTask(
            camera=cam, lod=i % lod_set.num_levels,
            sh_degree=lod_set.sh_degree(i % lod_set.num_levels),
            config=config,
        )
        for i, cam in enumerate(scene.train_cameras)
    ]


class TestShardedFrame:
    def test_matches_joint_render_frame(self, scene, paged):
        lod_set = LODSet.build(scene.oracle.params)
        for task in make_tasks(scene, lod_set):
            joint = render_frame(paged, lod_set.drop_level, task)
            sharded = render_frame_sharded(paged, lod_set.drop_level, task)
            np.testing.assert_allclose(sharded, joint, atol=ATOL, rtol=0)

    def test_no_lod_filtering(self, scene, paged):
        task = make_tasks(scene, LODSet.build(scene.oracle.params))[0]
        joint = render_frame(paged, None, task)
        sharded = render_frame_sharded(paged, None, task)
        np.testing.assert_allclose(sharded, joint, atol=ATOL, rtol=0)

    def test_float32_serve_config_close(self, scene, paged):
        """The default float32 serving config stays within float32
        compositing tolerance of the joint render."""
        lod_set = LODSet.build(scene.oracle.params)
        task = make_tasks(scene, lod_set, default_serve_raster_config())[0]
        joint = render_frame(paged, lod_set.drop_level, task)
        sharded = render_frame_sharded(paged, lod_set.drop_level, task)
        assert sharded.dtype == np.float32
        np.testing.assert_allclose(sharded, joint, atol=5e-3, rtol=0)

    def test_empty_view_is_background(self, scene, paged):
        """A camera seeing no splats must return the background fill."""
        from repro.cameras import Camera

        away = Camera.look_at(
            [0.0, 0.0, 500.0], [0.0, 0.0, 1000.0],
            width=32, height=24, near=0.5, far=2.0,
        )
        task = FrameTask(
            camera=away, lod=0, sh_degree=3,
            config=default_serve_raster_config(),
            background=np.array([0.25, 0.5, 0.75]),
        )
        image = render_frame_sharded(paged, None, task)
        assert image.shape == (24, 32, 3)
        np.testing.assert_allclose(image[:, :, 0], 0.25)
        np.testing.assert_allclose(image[:, :, 2], 0.75)


class TestShardedFarm:
    def test_pooled_batch_bit_identical_to_inline(self, scene, paged):
        lod_set = LODSet.build(scene.oracle.params)
        tasks = make_tasks(scene, lod_set)
        inline = RenderFarm(workers=0)
        inline.publish_sharded(paged, lod_set.drop_level)
        pooled = RenderFarm(workers=2)
        pooled.publish_sharded(paged, lod_set.drop_level)
        try:
            a = inline.render_batch(tasks)
            b = pooled.render_batch(tasks)
            assert len(a) == len(b) == len(tasks)
            for x, y in zip(a, b):
                assert np.array_equal(x, y)
        finally:
            inline.close()
            pooled.close()

    def test_published_segment_excludes_packed_matrix(self, scene, paged):
        """The shared segment ships geometry + shard ids only — the
        (N, 59) union is never packed on either side of the fan-out."""
        farm = RenderFarm(workers=2)
        farm.publish_sharded(paged, None)
        try:
            assert farm.published
            names = {m[0] for m in farm._metas}
            assert "params" not in names
            assert {"geo", "shard_rows_flat", "shard_offsets"} <= names
            # and the page files reach workers as paths, not bytes
            assert len(farm._page_specs) == len(paged.shard_rows)
        finally:
            farm.close()
        assert not farm.published

    def test_worker_decode_parity_under_codecs(self, scene, paged):
        """Workers decode compressed pages themselves (the page spec ships
        a path + codec name, never decoded bytes): pooled rendering stays
        bit-identical to inline for every codec, and the lossless store
        renders bit-identically to the raw one."""
        n = scene.oracle.num_gaussians
        lod_set = LODSet.build(scene.oracle.params)
        tasks = make_tasks(scene, lod_set)
        baseline = None
        for codec in ("lossless", "float16"):
            store = PagedServingStore.from_model(
                scene.oracle, budget(n), codec=codec
            )
            inline = RenderFarm(workers=0)
            inline.publish_sharded(store, lod_set.drop_level)
            pooled = RenderFarm(workers=2)
            pooled.publish_sharded(store, lod_set.drop_level)
            try:
                names = {spec[2] for spec in pooled._page_specs}
                assert names == {codec}
                a = inline.render_batch(tasks)
                b = pooled.render_batch(tasks)
                for x, y in zip(a, b):
                    assert np.array_equal(x, y)
                if codec == "lossless":
                    baseline = a
            finally:
                inline.close()
                pooled.close()
                store.close()
        # lossless pages are pure placement: same pixels as the raw store
        raw_farm = RenderFarm(workers=0)
        raw_farm.publish_sharded(paged, lod_set.drop_level)
        try:
            for x, y in zip(baseline, raw_farm.render_batch(tasks)):
                assert np.array_equal(x, y)
        finally:
            raw_farm.close()

    def test_republish_plain_after_sharded(self, scene, paged):
        """publish_sharded then publish must fully swap the dispatch."""
        from repro.serve import InMemoryServingStore

        lod_set = LODSet.build(scene.oracle.params)
        task = make_tasks(scene, lod_set)[:1]
        farm = RenderFarm(workers=0)
        farm.publish_sharded(paged, lod_set.drop_level)
        sharded = farm.render_batch(task)[0]
        farm.publish(
            InMemoryServingStore.from_model(scene.oracle),
            lod_set.drop_level,
        )
        joint = farm.render_batch(task)[0]
        farm.close()
        np.testing.assert_allclose(sharded, joint, atol=ATOL, rtol=0)
