"""Render-farm tests: pooled frames are bit-identical to inline frames."""

import numpy as np
import pytest

from repro.datasets import SyntheticSceneConfig, build_scene
from repro.render import shutdown_raster_pools
from repro.serve import (
    FrameTask,
    InMemoryServingStore,
    LODSet,
    RenderFarm,
    default_serve_raster_config,
)


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=180, width=32, height=24,
            num_train_cameras=4, num_test_cameras=2,
            altitude=12.0, seed=9,
        )
    )


def make_tasks(scene, lod_set):
    config = default_serve_raster_config()
    return [
        FrameTask(
            camera=cam, lod=i % lod_set.num_levels,
            sh_degree=lod_set.sh_degree(i % lod_set.num_levels),
            config=config,
        )
        for i, cam in enumerate(scene.train_cameras)
    ]


class TestRenderFarm:
    def test_pooled_batch_bit_identical_to_inline(self, scene):
        store = InMemoryServingStore.from_model(scene.oracle)
        lod_set = LODSet.build(scene.oracle.params)
        tasks = make_tasks(scene, lod_set)
        inline = RenderFarm(workers=0)
        inline.publish(store, lod_set.drop_level)
        pooled = RenderFarm(workers=2)
        pooled.publish(store, lod_set.drop_level)
        try:
            a = inline.render_batch(tasks)
            b = pooled.render_batch(tasks)
            assert len(a) == len(b) == len(tasks)
            for x, y in zip(a, b):
                assert np.array_equal(x, y)
        finally:
            inline.close()
            pooled.close()
            shutdown_raster_pools()

    def test_single_task_runs_inline(self, scene):
        store = InMemoryServingStore.from_model(scene.oracle)
        lod_set = LODSet.build(scene.oracle.params)
        farm = RenderFarm(workers=2)
        farm.publish(store, lod_set.drop_level)
        try:
            # one task short-circuits to the in-process path — no pool spin-up
            images = farm.render_batch(make_tasks(scene, lod_set)[:1])
            assert len(images) == 1
        finally:
            farm.close()

    def test_unpublished_farm_rejects_batches(self, scene):
        farm = RenderFarm(workers=0)
        with pytest.raises(RuntimeError, match="publish"):
            farm.render_batch([])
        farm.close()

    def test_republish_swaps_served_bytes(self, scene):
        lod_set = LODSet.build(scene.oracle.params)
        task = make_tasks(scene, lod_set)[:1]
        farm = RenderFarm(workers=0)
        farm.publish(InMemoryServingStore.from_model(scene.oracle), None)
        before = farm.render_batch(task)[0]
        farm.publish(InMemoryServingStore.from_model(scene.initial), None)
        after = farm.render_batch(task)[0]
        assert not np.array_equal(before, after)
        farm.close()
        assert not farm.published

    def test_no_drop_level_serves_full_detail_at_any_lod(self, scene):
        """publish(store, None) means no LOD filtering: a task with
        lod >= 1 must still render every splat, not a blank frame."""
        store = InMemoryServingStore.from_model(scene.oracle)
        config = default_serve_raster_config()
        farm = RenderFarm(workers=0)
        farm.publish(store, None)
        cam = scene.train_cameras[0]
        full = farm.render_batch(
            [FrameTask(camera=cam, lod=0, sh_degree=3, config=config)]
        )[0]
        coarse_lod = farm.render_batch(
            [FrameTask(camera=cam, lod=2, sh_degree=3, config=config)]
        )[0]
        assert np.array_equal(full, coarse_lod)
        farm.close()

    def test_close_is_idempotent(self, scene):
        farm = RenderFarm(workers=2)
        farm.publish(InMemoryServingStore.from_model(scene.oracle), None)
        farm.close()
        farm.close()
