"""LOD tests: nested subsets, full-detail identity, measured quality."""

import numpy as np
import pytest

from repro.datasets import SyntheticSceneConfig, build_scene
from repro.serve import (
    DEFAULT_LOD_LEVELS,
    LODLevel,
    LODSet,
    lod_quality_report,
    splat_importance,
)
from repro.serve.lod import render_at_lod
from repro.render import render
from repro.render.rasterize import RasterConfig


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=200, width=32, height=24,
            num_train_cameras=4, num_test_cameras=2,
            altitude=12.0, seed=5,
        )
    )


@pytest.fixture(scope="module")
def lod_set(scene):
    return LODSet.build(scene.oracle.params)


class TestConstruction:
    def test_subsets_are_nested(self, lod_set):
        previous = None
        for lod in range(lod_set.num_levels):
            ids = set(lod_set.subset_ids(lod).tolist())
            if previous is not None:
                assert ids <= previous
            previous = ids

    def test_level_zero_keeps_everything(self, scene, lod_set):
        assert lod_set.subset_ids(0).size == scene.oracle.num_gaussians
        assert lod_set.sh_degree(0) == 3

    def test_counts_match_keep_fractions(self, scene, lod_set):
        n = scene.oracle.num_gaussians
        for lod, level in enumerate(lod_set.levels):
            expected = int(np.ceil(level.keep_fraction * n))
            assert lod_set.subset_ids(lod).size == expected

    def test_deterministic(self, scene):
        a = LODSet.build(scene.oracle.params)
        b = LODSet.build(scene.oracle.params)
        assert np.array_equal(a.drop_level, b.drop_level)

    def test_importance_prefers_big_opaque_splats(self):
        params = np.zeros((2, 59))
        params[0, 10] = 4.0   # opaque
        params[1, 10] = -4.0  # transparent
        imp = splat_importance(params)
        assert imp[0] > imp[1]

    def test_validation(self):
        with pytest.raises(ValueError, match="keep"):
            LODLevel(sh_degree=3, keep_fraction=0.0)
        with pytest.raises(ValueError, match="sh_degree"):
            LODLevel(sh_degree=9, keep_fraction=1.0)
        with pytest.raises(ValueError, match="full detail"):
            LODSet([LODLevel(3, 0.5)], np.zeros(4, np.int16))
        with pytest.raises(ValueError, match="non-increasing"):
            LODSet(
                [LODLevel(3, 1.0), LODLevel(2, 0.2), LODLevel(1, 0.6)],
                np.zeros(4, np.int16),
            )
        with pytest.raises(ValueError, match="out of range"):
            LODSet.build(np.zeros((4, 59))).mask(len(DEFAULT_LOD_LEVELS))

    def test_filter_ids_respects_cull_order(self, scene, lod_set):
        ids = np.arange(0, scene.oracle.num_gaussians, 2)
        filtered = lod_set.filter_ids(ids, 1)
        assert np.all(np.diff(filtered) > 0)  # still sorted
        assert np.isin(filtered, lod_set.subset_ids(1)).all()
        assert lod_set.filter_ids(ids, 0) is ids  # level 0 is a no-op


class TestQuality:
    def test_level_zero_render_is_full_render(self, scene, lod_set):
        config = RasterConfig(engine="vectorized")
        cam = scene.test_cameras[0]
        image = render_at_lod(scene.oracle, cam, lod_set, 0, config)
        assert np.array_equal(image, render(scene.oracle, cam, config=config).image)

    def test_report_measures_monotone_degradation(self, scene, lod_set):
        report = lod_quality_report(
            scene.oracle, scene.test_cameras, lod_set,
            config=RasterConfig(engine="vectorized"),
        )
        assert len(report) == lod_set.num_levels
        assert report[0]["psnr_vs_full"] == float("inf")
        psnrs = [e["psnr_vs_full"] for e in report[1:]]
        assert all(np.isfinite(p) for p in psnrs)
        # the coarsest level cannot beat the finest reduced level
        assert psnrs[-1] <= psnrs[0]
        counts = [e["num_splats"] for e in report]
        assert counts == sorted(counts, reverse=True)
