"""Tests for the scene registry and workload-trace generation."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_AVG_ACTIVE_RATIO,
    SceneSpec,
    all_scenes,
    build_scene,
    get_scene,
    measure_trace,
    synthesize_trace,
    SyntheticSceneConfig,
)


class TestRegistry:
    def test_six_scenes(self):
        scenes = all_scenes()
        assert len(scenes) == 6
        assert [s.name for s in scenes] == [
            "Rubble", "Building", "LFLS", "SZIIT", "SZTU", "Aerial",
        ]

    def test_lookup_case_insensitive(self):
        assert get_scene("RUBBLE").name == "Rubble"
        with pytest.raises(KeyError):
            get_scene("nonexistent")

    def test_figure4_average(self):
        """The six active ratios average to the paper's 8.28%."""
        ratios = [s.avg_active_ratio for s in all_scenes()]
        assert np.mean(ratios) == pytest.approx(PAPER_AVG_ACTIVE_RATIO, abs=0.005)

    def test_resolutions_match_table2(self):
        assert get_scene("rubble").resolution == (1152, 864)
        assert get_scene("lfls").resolution == (1600, 1064)
        assert get_scene("aerial").resolution == (1600, 900)

    def test_aerial_has_no_small_variant(self):
        assert get_scene("aerial").small_total_gaussians is None
        for key in ("rubble", "building", "lfls", "sziit", "sztu"):
            assert get_scene(key).small_total_gaussians is not None

    def test_peak_exceeds_avg(self):
        for s in all_scenes():
            assert s.peak_active_ratio > s.avg_active_ratio


class TestSynthesizeTrace:
    def test_statistics_match_spec(self):
        spec = get_scene("rubble")
        trace = synthesize_trace(spec, num_views=4000, seed=0)
        assert trace.avg_ratio == pytest.approx(spec.avg_active_ratio, rel=0.15)
        assert trace.peak_ratio == pytest.approx(spec.peak_active_ratio, rel=1e-9)
        assert trace.active_ratios.min() > 0

    def test_deterministic(self):
        spec = get_scene("building")
        a = synthesize_trace(spec, num_views=100, seed=5)
        b = synthesize_trace(spec, num_views=100, seed=5)
        np.testing.assert_array_equal(a.active_ratios, b.active_ratios)

    def test_small_variant_total(self):
        spec = get_scene("lfls")
        trace = synthesize_trace(spec, num_views=10, use_small=True)
        assert trace.total_gaussians == spec.small_total_gaussians
        with pytest.raises(ValueError):
            synthesize_trace(get_scene("aerial"), num_views=10, use_small=True)

    def test_clipped_caps_peak(self):
        spec = get_scene("rubble")
        trace = synthesize_trace(spec, num_views=500, seed=1)
        clipped = trace.clipped(mem_limit=0.15)
        assert clipped.peak_ratio <= 0.15 + 1e-12
        # views under the limit are untouched
        under = trace.active_ratios <= 0.15
        np.testing.assert_array_equal(
            clipped.active_ratios[under], trace.active_ratios[under]
        )

    def test_active_counts(self):
        spec = get_scene("sztu")
        trace = synthesize_trace(spec, num_views=50, seed=2)
        counts = trace.active_counts()
        assert counts.shape == (50,)
        assert counts.max() <= spec.total_gaussians


class TestMeasureTrace:
    def test_on_synthetic_scene(self):
        scene = build_scene(
            SyntheticSceneConfig(
                num_points=300, width=32, height=24,
                num_train_cameras=4, num_test_cameras=2, seed=7,
            )
        )
        trace = measure_trace(scene.oracle, scene.train_cameras)
        assert trace.num_views == 4
        assert 0 < trace.avg_ratio <= 1.0
        assert trace.peak_ratio >= trace.avg_ratio
        assert trace.total_gaussians == scene.oracle.num_gaussians


class TestSpecProperties:
    def test_num_pixels(self):
        spec = SceneSpec(
            name="X", dataset="D", width=100, height=50,
            scene_type="t", total_gaussians=10, small_total_gaussians=5,
            avg_active_ratio=0.1, peak_active_ratio=0.2, num_train_images=3,
        )
        assert spec.num_pixels == 5000
        assert spec.resolution == (100, 50)
