"""Round-trip and parsing tests for COLMAP text-format ingestion."""

import numpy as np
import pytest

from repro.cameras import trajectories
from repro.datasets.colmap import (
    ColmapScene,
    load_colmap,
    write_colmap,
    _rotation_to_quat,
)
from repro.gaussians.quaternion import normalize, to_rotation_matrix


def make_cameras(n=5):
    return trajectories.orbit(
        [0, 0, 0], radius=4.0, height=2.0, num_cameras=n, width=64, height_px=48
    )


class TestRotationToQuat:
    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip_random_rotations(self, seed):
        rng = np.random.default_rng(seed)
        q = normalize(rng.normal(size=(1, 4)))
        rot = to_rotation_matrix(q)[0]
        w, x, y, z = _rotation_to_quat(rot)
        rot2 = to_rotation_matrix(np.array([[w, x, y, z]]))[0]
        np.testing.assert_allclose(rot2, rot, atol=1e-12)

    def test_identity(self):
        w, x, y, z = _rotation_to_quat(np.eye(3))
        assert w == pytest.approx(1.0)
        assert (x, y, z) == (0.0, 0.0, 0.0)

    def test_180_degree_rotations(self):
        """The trace<=0 branches."""
        for axis in range(3):
            rot = -np.eye(3)
            rot[axis, axis] = 1.0
            w, x, y, z = _rotation_to_quat(rot)
            rot2 = to_rotation_matrix(np.array([[w, x, y, z]]))[0]
            np.testing.assert_allclose(rot2, rot, atol=1e-12)


class TestRoundTrip:
    def test_cameras_and_points(self, tmp_path):
        cams = make_cameras()
        rng = np.random.default_rng(0)
        pts = rng.uniform(-2, 2, size=(40, 3))
        cols = rng.uniform(0, 1, size=(40, 3))
        write_colmap(str(tmp_path), cams, pts, cols)
        scene = load_colmap(str(tmp_path))
        assert isinstance(scene, ColmapScene)
        assert len(scene.cameras) == 5
        np.testing.assert_allclose(scene.points, pts, atol=1e-8)
        # colors quantized to 8 bits on write
        np.testing.assert_allclose(scene.colors, cols, atol=1 / 255.0)
        for orig, loaded in zip(cams, scene.cameras):
            np.testing.assert_allclose(
                loaded.world_to_cam_rot, orig.world_to_cam_rot, atol=1e-9
            )
            np.testing.assert_allclose(
                loaded.world_to_cam_trans, orig.world_to_cam_trans, atol=1e-9
            )
            assert loaded.fx == pytest.approx(orig.fx)
            assert (loaded.width, loaded.height) == (orig.width, orig.height)

    def test_projection_preserved(self, tmp_path):
        """A world point projects to the same pixel before and after."""
        cams = make_cameras(2)
        pt = np.array([[0.3, -0.2, 0.5]])
        write_colmap(str(tmp_path), cams, np.zeros((1, 3)), np.zeros((1, 3)))
        scene = load_colmap(str(tmp_path))
        for orig, loaded in zip(cams, scene.cameras):
            uv0 = orig.project(orig.world_to_cam(pt))
            uv1 = loaded.project(loaded.world_to_cam(pt))
            np.testing.assert_allclose(uv1, uv0, atol=1e-7)

    def test_image_names(self, tmp_path):
        cams = make_cameras(2)
        write_colmap(
            str(tmp_path), cams, np.zeros((0, 3)), np.zeros((0, 3)),
            image_names=["a.png", "b.png"],
        )
        scene = load_colmap(str(tmp_path))
        assert scene.image_names == ["a.png", "b.png"]
        assert scene.points.shape == (0, 3)


class TestParsing:
    def test_simple_pinhole(self, tmp_path):
        (tmp_path / "cameras.txt").write_text(
            "# comment\n1 SIMPLE_PINHOLE 100 80 90.0 50.0 40.0\n"
        )
        (tmp_path / "images.txt").write_text(
            "1 1 0 0 0 0.5 -0.25 2.0 1 im.png\n\n"
        )
        (tmp_path / "points3D.txt").write_text(
            "7 1.0 2.0 3.0 255 0 128 0.5\n"
        )
        scene = load_colmap(str(tmp_path))
        cam = scene.cameras[0]
        assert cam.fx == cam.fy == 90.0
        assert (cam.cx, cam.cy) == (50.0, 40.0)
        np.testing.assert_allclose(scene.points[0], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(scene.colors[0], [1.0, 0.0, 128 / 255])

    def test_unsupported_model(self, tmp_path):
        (tmp_path / "cameras.txt").write_text("1 OPENCV 10 10 1 1 1 1 0 0 0 0\n")
        (tmp_path / "images.txt").write_text("")
        with pytest.raises(ValueError):
            load_colmap(str(tmp_path))

    def test_feeds_gaussian_initialization(self, tmp_path):
        """The classic pipeline: COLMAP cloud -> initial Gaussians."""
        from repro.gaussians import GaussianModel

        cams = make_cameras(3)
        rng = np.random.default_rng(1)
        pts = rng.uniform(-2, 2, size=(30, 3))
        cols = rng.uniform(0, 1, size=(30, 3))
        write_colmap(str(tmp_path), cams, pts, cols)
        scene = load_colmap(str(tmp_path))
        model = GaussianModel.from_point_cloud(scene.points, scene.colors)
        assert model.num_gaussians == 30
