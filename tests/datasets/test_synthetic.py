"""Tests for the procedural scene generator and point-cloud helpers."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticSceneConfig,
    build_scene,
    generate_point_cloud,
    mean_knn_distance,
)


def small_config(**kw):
    base = dict(
        num_points=300,
        width=32,
        height=24,
        num_train_cameras=4,
        num_test_cameras=2,
        seed=3,
    )
    base.update(kw)
    return SyntheticSceneConfig(**base)


class TestPointCloud:
    def test_counts_and_ranges(self):
        cfg = small_config()
        pts, cols = generate_point_cloud(cfg)
        assert pts.shape == (300, 3)
        assert cols.shape == (300, 3)
        assert cols.min() >= 0.0 and cols.max() <= 1.0
        assert np.abs(pts[:, :2]).max() <= cfg.extent + 1e-9

    def test_deterministic_in_seed(self):
        cfg = small_config()
        a = generate_point_cloud(cfg)
        b = generate_point_cloud(cfg)
        np.testing.assert_array_equal(a[0], b[0])
        c = generate_point_cloud(small_config(seed=99))
        assert not np.array_equal(a[0], c[0])

    def test_buildings_rise_above_terrain(self):
        cfg = small_config(num_buildings=4, terrain_roughness=0.1)
        pts, _ = generate_point_cloud(cfg)
        assert pts[:, 2].max() > 0.5  # some building points well above ground


class TestKnnDistance:
    def test_regular_grid(self):
        xs = np.arange(5, dtype=float)
        pts = np.array([[x, 0.0, 0.0] for x in xs])
        d = mean_knn_distance(pts, k=2)
        # interior points: neighbors at distance 1 and 1
        assert d[2] == pytest.approx(1.0)

    def test_single_point(self):
        assert mean_knn_distance(np.zeros((1, 3)))[0] == 1.0

    def test_two_points(self):
        pts = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        np.testing.assert_allclose(mean_knn_distance(pts, k=3), [3.0, 3.0])


class TestBuildScene:
    @pytest.fixture(scope="class")
    def scene(self):
        return build_scene(small_config())

    def test_shapes(self, scene):
        assert len(scene.train_cameras) == 4
        assert len(scene.test_cameras) == 2
        assert len(scene.train_images) == 4
        assert scene.train_images[0].shape == (24, 32, 3)

    def test_ground_truth_nontrivial(self, scene):
        """GT images must actually show the scene (not all background)."""
        for img in scene.train_images:
            assert img.std() > 0.01

    def test_initial_model_degraded(self, scene):
        assert scene.initial.num_gaussians < scene.oracle.num_gaussians
        assert scene.initial.num_gaussians >= 4

    def test_initial_model_renders_worse_than_oracle(self, scene):
        from repro.metrics import psnr
        from repro.render import render

        cam = scene.train_cameras[0]
        gt = scene.train_images[0]
        init_img = render(scene.initial, cam).image
        assert psnr(init_img, gt) < 45.0  # clearly imperfect

    def test_cameras_see_gaussians(self, scene):
        from repro.render import frustum_cull

        m = scene.oracle
        for cam in scene.train_cameras:
            res = frustum_cull(m.means, m.log_scales, m.quats, cam)
            assert res.num_visible > 0
