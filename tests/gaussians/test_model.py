"""Tests for the GaussianModel SoA container and layout module."""

import numpy as np
import pytest

from repro.gaussians import GaussianModel, layout


def make_model(n=10, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return GaussianModel(rng.normal(size=(n, layout.PARAM_DIM)).astype(dtype))


class TestLayout:
    def test_param_dim_is_59(self):
        assert layout.PARAM_DIM == 59

    def test_geometric_is_10_of_59(self):
        assert layout.GEOMETRIC_DIM == 10
        assert layout.NON_GEOMETRIC_DIM == 49
        assert abs(layout.GEOMETRIC_FRACTION - 10 / 59) < 1e-12

    def test_attribute_slices_cover_disjointly(self):
        cols = []
        for spec in layout.ATTRIBUTES:
            cols.extend(range(spec.start, spec.start + spec.width))
        assert cols == list(range(layout.PARAM_DIM))

    def test_attribute_lookup(self):
        assert layout.attribute("sh").width == 48
        with pytest.raises(KeyError):
            layout.attribute("nope")

    def test_train_state_bytes(self):
        # paper Section 3.1: params+grads+2 moments = 4x params
        assert layout.train_state_bytes(1) == 4 * 59 * 4
        # Rubble anchor: ~40M Gaussians -> ~38 GB of state (53 GB total
        # with activations per the paper intro)
        gb = layout.train_state_bytes(40_000_000) / 2**30
        assert 30 < gb < 40


class TestModelViews:
    def test_views_share_memory(self):
        m = make_model()
        m.means[0, 0] = 123.0
        assert m.params[0, 0] == 123.0
        m.sh[0, 0, 0] = 7.0  # reshaped view still aliases
        assert m.params[0, layout.SH_SLICE.start] == 7.0

    def test_shapes(self):
        m = make_model(n=5)
        assert m.means.shape == (5, 3)
        assert m.log_scales.shape == (5, 3)
        assert m.quats.shape == (5, 4)
        assert m.opacity_logits.shape == (5, 1)
        assert m.sh.shape == (5, 16, 3)
        assert m.geometric.shape == (5, 10)
        assert m.non_geometric.shape == (5, 49)
        assert len(m) == 5

    def test_activations(self):
        m = make_model()
        np.testing.assert_allclose(
            m.opacities, 1 / (1 + np.exp(-m.opacity_logits[:, 0])), rtol=1e-6
        )
        np.testing.assert_allclose(m.scales, np.exp(m.log_scales), rtol=1e-6)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            GaussianModel(np.zeros((3, 10)))


class TestConstruction:
    def test_from_attributes_roundtrip(self):
        rng = np.random.default_rng(1)
        n = 6
        means = rng.normal(size=(n, 3))
        ls = rng.normal(size=(n, 3))
        q = rng.normal(size=(n, 4))
        op = rng.normal(size=(n,))
        sh = rng.normal(size=(n, 16, 3))
        m = GaussianModel.from_attributes(means, ls, q, op, sh)
        np.testing.assert_allclose(m.means, means, rtol=1e-6)
        np.testing.assert_allclose(m.sh, sh, rtol=1e-6)

    def test_from_point_cloud(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(-1, 1, size=(50, 3))
        colors = rng.uniform(0, 1, size=(50, 3))
        m = GaussianModel.from_point_cloud(pts, colors, initial_opacity=0.1)
        assert m.num_gaussians == 50
        np.testing.assert_allclose(m.means, pts, atol=1e-6)
        np.testing.assert_allclose(m.opacities, 0.1, atol=1e-6)
        # identity rotations
        np.testing.assert_allclose(m.quats[:, 0], 1.0)
        np.testing.assert_allclose(m.quats[:, 1:], 0.0)
        # DC SH reproduces colors through the C0 convention
        from repro.gaussians.sh import C0

        np.testing.assert_allclose(
            m.sh[:, 0, :] * C0 + 0.5, colors, atol=1e-5
        )

    def test_select_append(self):
        m = make_model(n=8)
        sub = m.select(np.array([1, 3]))
        assert sub.num_gaussians == 2
        joined = sub.append(m.select(np.array([0])))
        assert joined.num_gaussians == 3
        # copies, not views
        sub.params[0, 0] = 1e9
        assert m.params[1, 0] != 1e9
