"""Unit and numerical-gradient tests for quaternion utilities."""

import numpy as np
import pytest

from repro.gaussians import quaternion


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x (flattened loop)."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestNormalize:
    def test_unit_norm(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(32, 4))
        u = quaternion.normalize(q)
        np.testing.assert_allclose(np.linalg.norm(u, axis=-1), 1.0, atol=1e-12)

    def test_already_unit_unchanged(self):
        q = np.array([[1.0, 0.0, 0.0, 0.0]])
        np.testing.assert_allclose(quaternion.normalize(q), q)

    def test_zero_quaternion_safe(self):
        q = np.zeros((1, 4))
        u = quaternion.normalize(q)
        assert np.all(np.isfinite(u))

    def test_backward_matches_numerical(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(5, 4))
        w = rng.normal(size=(5, 4))  # random linear functional

        def loss(qq):
            return float(np.sum(quaternion.normalize(qq) * w))

        analytic = quaternion.normalize_backward(q, w)
        numeric = numerical_grad(loss, q.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)


class TestRotationMatrix:
    def test_identity(self):
        q = np.array([[1.0, 0.0, 0.0, 0.0]])
        np.testing.assert_allclose(
            quaternion.to_rotation_matrix(q)[0], np.eye(3), atol=1e-12
        )

    def test_orthonormal(self):
        rng = np.random.default_rng(2)
        u = quaternion.random_unit_quats(16, rng)
        rots = quaternion.to_rotation_matrix(u)
        for r in rots:
            np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-12)

    def test_z_rotation_90deg(self):
        angle = np.pi / 2
        q = np.array([[np.cos(angle / 2), 0.0, 0.0, np.sin(angle / 2)]])
        r = quaternion.to_rotation_matrix(q)[0]
        np.testing.assert_allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_double_cover(self):
        rng = np.random.default_rng(3)
        u = quaternion.random_unit_quats(8, rng)
        np.testing.assert_allclose(
            quaternion.to_rotation_matrix(u),
            quaternion.to_rotation_matrix(-u),
            atol=1e-12,
        )

    def test_backward_matches_numerical(self):
        rng = np.random.default_rng(4)
        u = quaternion.random_unit_quats(6, rng)
        w = rng.normal(size=(6, 3, 3))

        analytic = quaternion.rotation_matrix_backward(u, w)

        # numerical: perturb unit quats directly (no re-normalization; the
        # rotation formula is defined for any q, grads match at unit norm)
        def loss(qq):
            return float(np.sum(quaternion.to_rotation_matrix(qq) * w))

        numeric = numerical_grad(loss, u.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestFullChain:
    def test_raw_quat_to_rotation_gradient(self):
        rng = np.random.default_rng(5)
        q = rng.normal(size=(4, 4)) * 2.0
        w = rng.normal(size=(4, 3, 3))

        def loss(qq):
            u = quaternion.normalize(qq)
            return float(np.sum(quaternion.to_rotation_matrix(u) * w))

        unit = quaternion.normalize(q)
        grad_unit = quaternion.rotation_matrix_backward(unit, w)
        analytic = quaternion.normalize_backward(q, grad_unit)
        numeric = numerical_grad(loss, q.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)
