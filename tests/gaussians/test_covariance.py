"""Tests for 3D covariance construction and its backward pass."""

import numpy as np

from repro.gaussians import covariance, quaternion


class TestBuildCovariance:
    def test_identity_rotation_diag(self):
        log_scales = np.log(np.array([[1.0, 2.0, 3.0]]))
        quats = np.array([[1.0, 0.0, 0.0, 0.0]])
        cov, _ = covariance.build_covariance(log_scales, quats)
        np.testing.assert_allclose(cov[0], np.diag([1.0, 4.0, 9.0]), atol=1e-12)

    def test_symmetric_positive_definite(self):
        rng = np.random.default_rng(0)
        n = 32
        log_scales = rng.uniform(-2, 1, size=(n, 3))
        quats = rng.normal(size=(n, 4))
        cov, _ = covariance.build_covariance(log_scales, quats)
        np.testing.assert_allclose(cov, np.swapaxes(cov, -1, -2), atol=1e-12)
        eigvals = np.linalg.eigvalsh(cov)
        assert np.all(eigvals > 0)

    def test_rotation_invariant_trace(self):
        """Trace (sum of squared scales) is rotation invariant."""
        rng = np.random.default_rng(1)
        log_scales = rng.uniform(-1, 1, size=(8, 3))
        quats = rng.normal(size=(8, 4))
        cov, _ = covariance.build_covariance(log_scales, quats)
        expected = np.sum(np.exp(2 * log_scales), axis=1)
        np.testing.assert_allclose(np.trace(cov, axis1=1, axis2=2), expected)

    def test_determinant(self):
        """det(Sigma) = prod(scale^2) regardless of rotation."""
        rng = np.random.default_rng(2)
        log_scales = rng.uniform(-1, 1, size=(8, 3))
        quats = rng.normal(size=(8, 4))
        cov, _ = covariance.build_covariance(log_scales, quats)
        expected = np.prod(np.exp(2 * log_scales), axis=1)
        np.testing.assert_allclose(np.linalg.det(cov), expected, rtol=1e-10)


class TestBackward:
    def test_matches_numerical(self):
        rng = np.random.default_rng(3)
        n = 5
        log_scales = rng.uniform(-1, 0.5, size=(n, 3))
        quats = rng.normal(size=(n, 4))
        w = rng.normal(size=(n, 3, 3))

        cov, ctx = covariance.build_covariance(log_scales, quats)
        g_ls, g_q = covariance.build_covariance_backward(quats, ctx, w)

        eps = 1e-6

        def loss():
            c, _ = covariance.build_covariance(log_scales, quats)
            return float(np.sum(c * w))

        for arr, grad in ((log_scales, g_ls), (quats, g_q)):
            numeric = np.zeros_like(arr)
            flat, nflat = arr.reshape(-1), numeric.reshape(-1)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                hi = loss()
                flat[i] = orig - eps
                lo = loss()
                flat[i] = orig
                nflat[i] = (hi - lo) / (2 * eps)
            np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_asymmetric_grad_handled(self):
        """Backward symmetrizes dL/dSigma, so G and (G+G^T)/2 agree."""
        rng = np.random.default_rng(4)
        log_scales = rng.uniform(-1, 0, size=(3, 3))
        quats = quaternion.random_unit_quats(3, rng)
        g = rng.normal(size=(3, 3, 3))
        _, ctx = covariance.build_covariance(log_scales, quats)
        out1 = covariance.build_covariance_backward(quats, ctx, g)
        gsym = 0.5 * (g + np.swapaxes(g, -1, -2))
        out2 = covariance.build_covariance_backward(quats, ctx, gsym)
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-12)
        np.testing.assert_allclose(out1[1], out2[1], atol=1e-12)
