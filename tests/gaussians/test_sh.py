"""Tests for the real spherical harmonics basis and its gradients."""

import numpy as np
import pytest

from repro.gaussians import sh


def random_unit_dirs(n, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=(n, 3))
    return v / np.linalg.norm(v, axis=-1, keepdims=True)


class TestBasis:
    def test_degree0_constant(self):
        dirs = random_unit_dirs(10)
        b = sh.basis(dirs, degree=0)
        np.testing.assert_allclose(b, sh.C0)

    @pytest.mark.parametrize("degree", [0, 1, 2, 3])
    def test_shape(self, degree):
        dirs = random_unit_dirs(7)
        assert sh.basis(dirs, degree).shape == (7, (degree + 1) ** 2)

    def test_invalid_degree_raises(self):
        with pytest.raises(ValueError):
            sh.num_coeffs(4)
        with pytest.raises(ValueError):
            sh.num_coeffs(-1)

    def test_orthonormality(self):
        """Monte-Carlo check: int basis_i basis_j dOmega ~= delta_ij."""
        rng = np.random.default_rng(42)
        v = rng.normal(size=(200_000, 3))
        dirs = v / np.linalg.norm(v, axis=-1, keepdims=True)
        b = sh.basis(dirs, degree=3)
        gram = (b.T @ b) / dirs.shape[0] * (4 * np.pi)
        np.testing.assert_allclose(gram, np.eye(16), atol=0.05)

    def test_degree_prefix_consistency(self):
        dirs = random_unit_dirs(5, seed=1)
        full = sh.basis(dirs, degree=3)
        for d in range(4):
            np.testing.assert_allclose(
                sh.basis(dirs, degree=d), full[:, : (d + 1) ** 2]
            )


class TestBasisJacobian:
    @pytest.mark.parametrize("degree", [0, 1, 2, 3])
    def test_matches_numerical(self, degree):
        dirs = random_unit_dirs(6, seed=2)
        jac = sh.basis_jacobian(dirs, degree)
        eps = 1e-6
        for axis in range(3):
            shift = np.zeros(3)
            shift[axis] = eps
            hi = sh.basis(dirs + shift, degree)
            lo = sh.basis(dirs - shift, degree)
            numeric = (hi - lo) / (2 * eps)
            np.testing.assert_allclose(jac[..., axis], numeric, atol=1e-6)


class TestEvalColors:
    def test_dc_only_color(self):
        """A Gaussian with only DC coefficients has view-independent color."""
        coeffs = np.zeros((1, 16, 3))
        target = np.array([0.7, 0.2, 0.4])
        coeffs[0, 0, :] = (target - 0.5) / sh.C0
        for seed in range(3):
            dirs = random_unit_dirs(1, seed=seed)
            colors, mask = sh.eval_colors(coeffs, dirs, degree=3)
            np.testing.assert_allclose(colors[0], target, atol=1e-12)
            assert mask.all()

    def test_clamp_at_zero(self):
        coeffs = np.zeros((1, 16, 3))
        coeffs[0, 0, :] = (-1.0 - 0.5) / sh.C0  # raw = -1.0
        dirs = random_unit_dirs(1)
        colors, mask = sh.eval_colors(coeffs, dirs)
        np.testing.assert_allclose(colors, 0.0)
        assert not mask.any()

    def test_backward_matches_numerical(self):
        rng = np.random.default_rng(3)
        n = 4
        coeffs = rng.normal(size=(n, 16, 3)) * 0.3
        dirs = random_unit_dirs(n, seed=4)
        w = rng.normal(size=(n, 3))

        colors, mask = sh.eval_colors(coeffs, dirs)
        g_coeffs, g_dirs = sh.eval_colors_backward(coeffs, dirs, mask, w)

        eps = 1e-6
        # coefficients
        numeric_c = np.zeros_like(coeffs)
        flat = coeffs.reshape(-1)
        nflat = numeric_c.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = np.sum(sh.eval_colors(coeffs, dirs)[0] * w)
            flat[i] = orig - eps
            lo = np.sum(sh.eval_colors(coeffs, dirs)[0] * w)
            flat[i] = orig
            nflat[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(g_coeffs, numeric_c, atol=1e-6)

        # directions (treating components as free variables)
        numeric_d = np.zeros_like(dirs)
        flat = dirs.reshape(-1)
        nflat = numeric_d.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = np.sum(sh.eval_colors(coeffs, dirs)[0] * w)
            flat[i] = orig - eps
            lo = np.sum(sh.eval_colors(coeffs, dirs)[0] * w)
            flat[i] = orig
            nflat[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(g_dirs, numeric_d, atol=1e-5)

    def test_clamped_channels_get_zero_grad(self):
        coeffs = np.zeros((1, 16, 3))
        coeffs[0, 0, 0] = (-1.0 - 0.5) / sh.C0  # R clamped
        coeffs[0, 0, 1] = (0.5 - 0.5) / sh.C0  # G alive
        dirs = random_unit_dirs(1)
        colors, mask = sh.eval_colors(coeffs, dirs)
        g_coeffs, _ = sh.eval_colors_backward(
            coeffs, dirs, mask, np.ones((1, 3))
        )
        assert g_coeffs[0, 0, 0] == 0.0
        assert g_coeffs[0, 0, 1] != 0.0
