"""Round-trip tests for model / trace persistence."""

import numpy as np
import pytest

from repro import io
from repro.datasets import WorkloadTrace, get_scene, synthesize_trace
from repro.gaussians import GaussianModel, layout


def make_model(n=12, seed=0):
    rng = np.random.default_rng(seed)
    return GaussianModel(rng.normal(size=(n, layout.PARAM_DIM)))


class TestNpz:
    def test_roundtrip(self, tmp_path):
        m = make_model()
        path = str(tmp_path / "model.npz")
        io.save_model(path, m)
        loaded = io.load_model(path)
        np.testing.assert_array_equal(loaded.params, m.params)

    def test_wrong_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError):
            io.load_model(path)


class TestPly:
    def test_roundtrip(self, tmp_path):
        m = make_model(n=7, seed=1)
        path = str(tmp_path / "scene.ply")
        io.export_ply(path, m)
        loaded = io.import_ply(path)
        np.testing.assert_allclose(loaded.params, m.params, rtol=1e-6)

    def test_single_gaussian(self, tmp_path):
        m = make_model(n=1, seed=2)
        path = str(tmp_path / "one.ply")
        io.export_ply(path, m)
        loaded = io.import_ply(path)
        assert loaded.num_gaussians == 1
        np.testing.assert_allclose(loaded.params, m.params, rtol=1e-6)

    def test_header_layout(self, tmp_path):
        m = make_model(n=2)
        path = str(tmp_path / "h.ply")
        io.export_ply(path, m)
        text = open(path).read()
        assert "element vertex 2" in text
        assert "property float f_dc_0" in text
        assert "property float f_rest_44" in text
        assert "property float rot_3" in text
        # 59 float properties total per vertex
        assert text.count("property float") == layout.PARAM_DIM

    def test_not_ply_rejected(self, tmp_path):
        path = tmp_path / "x.ply"
        path.write_text("hello\n")
        with pytest.raises(ValueError):
            io.import_ply(str(path))

    def test_renders_identically_after_roundtrip(self, tmp_path):
        """A round-tripped model must produce the same image."""
        from repro.cameras import Camera
        from repro.render import render

        rng = np.random.default_rng(3)
        m = GaussianModel.from_point_cloud(
            rng.uniform(-1, 1, (30, 3)), rng.uniform(0, 1, (30, 3)),
            dtype=np.float64,
        )
        cam = Camera.look_at([0, -3, 0.5], [0, 0, 0], width=24, height=18)
        path = str(tmp_path / "r.ply")
        io.export_ply(path, m)
        m2 = io.import_ply(path)
        img1 = render(m, cam).image
        img2 = render(m2, cam).image
        np.testing.assert_allclose(img1, img2, atol=1e-6)


class TestTrace:
    def test_roundtrip(self, tmp_path):
        trace = synthesize_trace(get_scene("rubble"), num_views=20, seed=5)
        path = str(tmp_path / "trace.json")
        io.save_trace(path, trace)
        loaded = io.load_trace(path)
        assert loaded.scene_name == trace.scene_name
        assert loaded.total_gaussians == trace.total_gaussians
        np.testing.assert_allclose(loaded.active_ratios, trace.active_ratios)

    def test_loaded_trace_usable_in_sim(self, tmp_path):
        from repro.sim import get_platform, simulate_epoch

        trace = WorkloadTrace("t", 1_000_000, np.array([0.1, 0.2]))
        path = str(tmp_path / "t.json")
        io.save_trace(path, trace)
        loaded = io.load_trace(path)
        res = simulate_epoch(
            get_platform("laptop_4070m"), loaded, "gsscale", 1_000_000
        )
        assert not res.oom
