"""Equivalence tests: deferred optimizer update vs dense reference.

These verify the paper's central algorithmic claim (Section 4.3): deferring
updates of zero-gradient Gaussians and lazily reconstructing their state is
equivalent to dense Adam, up to the epsilon-factoring approximation in the
weight restoration (exact for the moments; Table 3 shows the approximation
does not affect training quality).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import AdamConfig, DeferredAdam, DenseAdam

LR = 0.01


def run_pair(sparsity_pattern, grads, config=None, max_defer=15, p0=None):
    """Run DenseAdam and DeferredAdam on the same sparse-gradient sequence.

    Args:
        sparsity_pattern: iterable of boolean arrays ``(N,)``, one per step.
        grads: array ``(T, N, D)`` of gradient values (masked by pattern).
    """
    config = config or AdamConfig(lr=LR)
    steps, n, d = grads.shape
    if p0 is None:
        rng = np.random.default_rng(1234)
        p0 = rng.normal(size=(n, d))
    dense = DenseAdam(p0.copy(), config)
    deferred = DeferredAdam(p0.copy(), config, max_defer=max_defer)
    for t in range(steps):
        mask = np.asarray(sparsity_pattern[t], dtype=bool)
        full = np.where(mask[:, None], grads[t], 0.0)
        dense.step(full)
        ids = np.nonzero(mask)[0]
        deferred.step(ids, grads[t][ids])
    return dense, deferred


class TestAllActiveEquivalence:
    def test_matches_dense_when_nothing_deferred(self):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(10, 6, 4))
        pattern = [np.ones(6, dtype=bool)] * 10
        dense, deferred = run_pair(pattern, grads)
        np.testing.assert_allclose(deferred.params, dense.params, rtol=1e-12)
        np.testing.assert_allclose(deferred.m, dense.m, rtol=1e-12)
        np.testing.assert_allclose(deferred.v, dense.v, rtol=1e-12)
        assert np.all(deferred.counter == 0)


class TestDeferredEquivalence:
    def test_single_deferral_roundtrip(self):
        """One row skips d steps, then gets a gradient: states must agree."""
        rng = np.random.default_rng(1)
        steps, n, d = 12, 3, 2
        grads = rng.normal(size=(steps, n, d))
        pattern = []
        for t in range(steps):
            mask = np.ones(n, dtype=bool)
            if 2 <= t <= 8:
                mask[0] = False  # row 0 deferred for 7 steps
            pattern.append(mask)
        dense, deferred = run_pair(pattern, grads)
        np.testing.assert_allclose(deferred.m, dense.m, rtol=1e-10)
        np.testing.assert_allclose(deferred.v, dense.v, rtol=1e-10)
        np.testing.assert_allclose(deferred.params, dense.params, rtol=1e-8)

    def test_deferred_moments_are_stored_stale(self):
        """Stored moments of a deferred row lag dense by beta^d — the
        materialized accessors bridge the gap (Equation 2)."""
        rng = np.random.default_rng(12)
        grads = rng.normal(size=(4, 2, 2))
        pattern = [
            np.array([True, True]),
            np.array([False, True]),
            np.array([False, True]),
            np.array([False, True]),
        ]
        dense, deferred = run_pair(pattern, grads)
        assert deferred.counter[0] == 3
        # stored m lags by beta1^3
        np.testing.assert_allclose(
            deferred.m[0] * 0.9**3, dense.m[0], rtol=1e-12
        )
        m_mat, v_mat = deferred.materialized_moments()
        np.testing.assert_allclose(m_mat, dense.m, rtol=1e-12)
        np.testing.assert_allclose(v_mat, dense.v, rtol=1e-12)

    def test_never_active_row_stays_put(self):
        rng = np.random.default_rng(2)
        grads = rng.normal(size=(5, 4, 3))
        pattern = []
        for _ in range(5):
            mask = np.ones(4, dtype=bool)
            mask[3] = False
            pattern.append(mask)
        p0 = np.random.default_rng(1234).normal(size=(4, 3))
        dense, deferred = run_pair(pattern, grads)
        # a row with zero moments has no drift: stored == dense == initial
        np.testing.assert_allclose(deferred.params[3], dense.params[3], rtol=1e-12)
        np.testing.assert_allclose(deferred.params[3], p0[3], rtol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(2, 30),
        n=st.integers(1, 8),
        density=st.floats(0.1, 0.9),
    )
    def test_property_random_sparsity(self, seed, steps, n, density):
        """Property: any sparsity pattern yields dense-equivalent training."""
        rng = np.random.default_rng(seed)
        d = 3
        grads = rng.normal(size=(steps, n, d))
        pattern = [rng.random(n) < density for _ in range(steps)]
        dense, deferred = run_pair(pattern, grads)
        m_mat, v_mat = deferred.materialized_moments()
        np.testing.assert_allclose(m_mat, dense.m, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(v_mat, dense.v, rtol=1e-9, atol=1e-12)
        final_deferred = deferred.materialized_params()
        np.testing.assert_allclose(
            final_deferred, dense.params, rtol=1e-7, atol=1e-10
        )

    def test_epsilon_approximation_bounded(self):
        """With a large eps the approximation error appears but stays tiny
        relative to the parameter scale (Section 5.5 / Table 3)."""
        rng = np.random.default_rng(3)
        steps, n, d = 20, 4, 2
        grads = rng.normal(size=(steps, n, d))
        pattern = [rng.random(n) < 0.4 for _ in range(steps)]
        cfg = AdamConfig(lr=LR, eps=1e-8)
        dense, deferred = run_pair(pattern, grads, config=cfg)
        drift = np.abs(deferred.materialized_params() - dense.params)
        assert drift.max() < 1e-6  # bounded, nonzero is acceptable


class TestCounterMechanics:
    def test_counter_never_exceeds_max(self):
        rng = np.random.default_rng(4)
        opt = DeferredAdam(rng.normal(size=(5, 2)), AdamConfig(lr=LR), max_defer=3)
        for _ in range(20):
            opt.step(np.array([0]), rng.normal(size=(1, 2)))
            assert opt.counter.max() <= 3

    def test_saturation_forces_update(self):
        """A row deferred max_defer times is updated even with zero grad."""
        rng = np.random.default_rng(5)
        opt = DeferredAdam(rng.normal(size=(2, 2)), AdamConfig(lr=LR), max_defer=3)
        # give row 1 momentum, then starve it
        opt.step(np.array([1]), rng.normal(size=(1, 2)))
        before = opt.params[1].copy()
        for _ in range(3):
            opt.step(np.array([0]), rng.normal(size=(1, 2)))
        np.testing.assert_array_equal(opt.params[1], before)  # still deferred
        stats = opt.step(np.array([0]), rng.normal(size=(1, 2)))
        assert stats.rows_updated == 2  # row 1 dragged in by saturation
        assert opt.counter[1] == 0
        assert np.any(opt.params[1] != before)  # drift committed

    def test_update_ids_union(self):
        opt = DeferredAdam(np.zeros((6, 2)), max_defer=2)
        opt.counter[:] = np.array([0, 2, 1, 2, 0, 0])
        ids = opt.update_ids_for(np.array([4, 0]))
        np.testing.assert_array_equal(ids, [0, 1, 3, 4])

    def test_max_defer_validation(self):
        with pytest.raises(ValueError):
            DeferredAdam(np.zeros((2, 2)), max_defer=0)
        with pytest.raises(ValueError):
            DeferredAdam(np.zeros((2, 2)), max_defer=300)


class TestForwardingContract:
    def test_peek_equals_commit(self):
        """peek_updated (parameter forwarding) must predict the committed
        state exactly — Section 4.3.3's consistency requirement."""
        rng = np.random.default_rng(6)
        opt = DeferredAdam(rng.normal(size=(8, 3)), AdamConfig(lr=LR))
        # warm up with mixed sparsity
        for _ in range(7):
            ids = np.sort(rng.choice(8, size=3, replace=False))
            opt.step(ids, rng.normal(size=(3, 3)))
        ids = np.array([1, 5])
        g = rng.normal(size=(2, 3))
        peeked = opt.peek_updated(ids, g)
        counters_before = opt.counter.copy()
        params_before = opt.params.copy()
        opt.step(ids, g)
        np.testing.assert_allclose(opt.params[ids], peeked, rtol=1e-13)
        # peek must not have mutated anything before the step
        np.testing.assert_array_equal(opt.counter[ids], 0)
        del counters_before, params_before

    def test_peek_is_pure(self):
        rng = np.random.default_rng(7)
        opt = DeferredAdam(rng.normal(size=(4, 2)), AdamConfig(lr=LR))
        opt.step(np.array([0, 1]), rng.normal(size=(2, 2)))
        snap = (opt.params.copy(), opt.m.copy(), opt.v.copy(), opt.counter.copy())
        opt.peek_updated(np.array([0, 2]), rng.normal(size=(2, 2)))
        np.testing.assert_array_equal(opt.params, snap[0])
        np.testing.assert_array_equal(opt.m, snap[1])
        np.testing.assert_array_equal(opt.v, snap[2])
        np.testing.assert_array_equal(opt.counter, snap[3])

    def test_peek_zero_grad_row_includes_drift(self):
        """Forwarded rows with zero pending gradient still need their
        zero-grad drift applied (they are in the next frustum)."""
        rng = np.random.default_rng(8)
        opt = DeferredAdam(rng.normal(size=(2, 2)), AdamConfig(lr=LR))
        opt.step(np.array([0]), rng.normal(size=(1, 2)))  # row 0 gets momentum
        opt.step(np.array([1]), rng.normal(size=(1, 2)))  # row 0 deferred once
        peeked = opt.peek_updated(np.array([0]), np.zeros((1, 2)))
        assert np.all(peeked != opt.params[0])  # drift applied


class TestMaterializeAndFlush:
    def test_materialize_matches_dense_midtraining(self):
        rng = np.random.default_rng(9)
        steps, n, d = 15, 5, 3
        grads = rng.normal(size=(steps, n, d))
        pattern = [rng.random(n) < 0.5 for _ in range(steps)]
        dense, deferred = run_pair(pattern, grads)
        np.testing.assert_allclose(
            deferred.materialized_params(), dense.params, rtol=1e-7, atol=1e-10
        )

    def test_flush_commits_and_training_continues(self):
        rng = np.random.default_rng(10)
        cfg = AdamConfig(lr=LR)
        p0 = rng.normal(size=(5, 3))
        dense = DenseAdam(p0.copy(), cfg)
        deferred = DeferredAdam(p0.copy(), cfg)
        for _ in range(6):
            ids = np.sort(rng.choice(5, size=2, replace=False))
            g = rng.normal(size=(2, 3))
            full = np.zeros((5, 3))
            full[ids] = g
            dense.step(full)
            deferred.step(ids, g)
        deferred.flush()
        assert np.all(deferred.counter == 0)
        np.testing.assert_allclose(deferred.params, dense.params, rtol=1e-7)
        np.testing.assert_allclose(deferred.m, dense.m, rtol=1e-9)
        np.testing.assert_allclose(deferred.v, dense.v, rtol=1e-9)
        # keep training after the flush; must stay equivalent
        for _ in range(6):
            ids = np.sort(rng.choice(5, size=2, replace=False))
            g = rng.normal(size=(2, 3))
            full = np.zeros((5, 3))
            full[ids] = g
            dense.step(full)
            deferred.step(ids, g)
        np.testing.assert_allclose(
            deferred.materialized_params(), dense.params, rtol=1e-7
        )


class TestTrafficAccounting:
    def test_deferred_traffic_scales_with_active_rows(self):
        n, d = 100, 59
        opt = DeferredAdam(np.zeros((n, d), dtype=np.float32))
        ids = np.arange(10)
        stats = opt.step(ids, np.zeros((10, d), dtype=np.float32))
        assert stats.rows_updated == 10
        assert stats.float_bytes == 7 * 10 * d * 4
        assert stats.counter_bytes == 2 * n

    def test_traffic_ratio_matches_paper_model(self):
        """Deferred vs dense float traffic ~ active ratio (Section 4.3.2)."""
        n, d = 1000, 59
        dense = DenseAdam(np.zeros((n, d), dtype=np.float32))
        deferred = DeferredAdam(np.zeros((n, d), dtype=np.float32))
        active = np.arange(83)  # ~8.3% like Figure 4's average
        s_dense = dense.step(np.zeros((n, d), dtype=np.float32))
        s_def = deferred.step(active, np.zeros((83, d), dtype=np.float32))
        ratio = s_def.float_bytes / s_dense.float_bytes
        assert ratio == pytest.approx(0.083, abs=1e-3)
        # counters add ~2 bytes per Gaussian vs 7*59*4 bytes per update
        assert s_def.counter_bytes / s_dense.float_bytes < 0.002


class TestAdamWExtension:
    def test_deferred_adamw_matches_dense(self):
        rng = np.random.default_rng(11)
        cfg = AdamConfig(lr=LR, weight_decay=0.01)
        steps, n, d = 18, 5, 3
        grads = rng.normal(size=(steps, n, d))
        pattern = [rng.random(n) < 0.5 for _ in range(steps)]
        dense, deferred = run_pair(pattern, grads, config=cfg)
        m_mat, _ = deferred.materialized_moments()
        np.testing.assert_allclose(m_mat, dense.m, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            deferred.materialized_params(), dense.params, rtol=1e-6, atol=1e-9
        )
