"""Tests for dense and deferred momentum SGD (exact-restoration case)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import DeferredSGD, DenseSGD, SGDConfig


def run_pair(pattern, grads, config=None, max_defer=15):
    config = config or SGDConfig(lr=0.01, momentum=0.9)
    steps, n, d = grads.shape
    rng = np.random.default_rng(77)
    p0 = rng.normal(size=(n, d))
    dense = DenseSGD(p0.copy(), config)
    deferred = DeferredSGD(p0.copy(), config, max_defer=max_defer)
    for t in range(steps):
        mask = np.asarray(pattern[t], dtype=bool)
        full = np.where(mask[:, None], grads[t], 0.0)
        dense.step(full)
        ids = np.nonzero(mask)[0]
        deferred.step(ids, grads[t][ids])
    return dense, deferred


class TestDenseSGD:
    def test_momentum_accumulates(self):
        opt = DenseSGD(np.zeros((1, 1)), SGDConfig(lr=1.0, momentum=0.5))
        g = np.ones((1, 1))
        opt.step(g)
        assert opt.params[0, 0] == pytest.approx(-1.0)
        opt.step(g)
        # m = 0.5*1 + 1 = 1.5 -> p = -1 - 1.5
        assert opt.params[0, 0] == pytest.approx(-2.5)

    def test_zero_momentum_is_plain_sgd(self):
        opt = DenseSGD(np.zeros((2, 2)), SGDConfig(lr=0.1, momentum=0.0))
        opt.step(np.ones((2, 2)))
        np.testing.assert_allclose(opt.params, -0.1)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGDConfig(momentum=1.0)
        with pytest.raises(ValueError):
            SGDConfig(momentum=-0.1)


class TestDeferredSGD:
    def test_exact_equality_when_all_active(self):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(8, 4, 3))
        pattern = [np.ones(4, dtype=bool)] * 8
        dense, deferred = run_pair(pattern, grads)
        np.testing.assert_array_equal(deferred.params, dense.params)
        np.testing.assert_array_equal(deferred.m, dense.m)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(2, 25),
        n=st.integers(1, 6),
        density=st.floats(0.1, 0.9),
    )
    def test_property_exact_restoration(self, seed, steps, n, density):
        """SGD restoration is a pure geometric series: near bit-exact."""
        rng = np.random.default_rng(seed)
        grads = rng.normal(size=(steps, n, 2))
        pattern = [rng.random(n) < density for _ in range(steps)]
        dense, deferred = run_pair(pattern, grads)
        np.testing.assert_allclose(
            deferred.materialized_params(), dense.params, rtol=1e-12, atol=1e-14
        )

    def test_flush_then_continue(self):
        rng = np.random.default_rng(1)
        cfg = SGDConfig(lr=0.05, momentum=0.8)
        p0 = rng.normal(size=(3, 2))
        dense = DenseSGD(p0.copy(), cfg)
        deferred = DeferredSGD(p0.copy(), cfg)
        for t in range(5):
            ids = np.array([t % 3])
            g = rng.normal(size=(1, 2))
            full = np.zeros((3, 2))
            full[ids] = g
            dense.step(full)
            deferred.step(ids, g)
        deferred.flush()
        np.testing.assert_allclose(deferred.params, dense.params, rtol=1e-12)
        np.testing.assert_allclose(deferred.m, dense.m, rtol=1e-12)
        for t in range(5):
            ids = np.array([(t + 1) % 3])
            g = rng.normal(size=(1, 2))
            full = np.zeros((3, 2))
            full[ids] = g
            dense.step(full)
            deferred.step(ids, g)
        np.testing.assert_allclose(
            deferred.materialized_params(), dense.params, rtol=1e-12
        )

    def test_saturation_commits(self):
        cfg = SGDConfig(lr=0.1, momentum=0.9)
        opt = DeferredSGD(np.zeros((2, 1)), cfg, max_defer=2)
        opt.step(np.array([1]), np.ones((1, 1)))  # row 1 builds momentum
        for _ in range(2):
            opt.step(np.array([0]), np.ones((1, 1)))
        stats = opt.step(np.array([0]), np.ones((1, 1)))
        assert stats.rows_updated == 2
        assert opt.counter[1] == 0


class TestLrSchedule:
    def test_packed_lr_vector_layout(self):
        from repro.gaussians import layout
        from repro.optim import packed_lr_vector

        lr = packed_lr_vector(scene_extent=2.0)
        assert lr.shape == (59,)
        np.testing.assert_allclose(lr[layout.MEAN_SLICE], 1.6e-4 * 2.0)
        np.testing.assert_allclose(lr[layout.OPACITY_SLICE], 5e-2)
        # DC SH at full rate, higher bands divided by 20
        sh = lr[layout.SH_SLICE]
        np.testing.assert_allclose(sh[:3], 2.5e-3)
        np.testing.assert_allclose(sh[3:], 2.5e-3 / 20)

    def test_overrides(self):
        from repro.optim import packed_lr_vector

        lr = packed_lr_vector(overrides={"opacity": 0.1})
        assert lr[10] == pytest.approx(0.1)
        with pytest.raises(KeyError):
            packed_lr_vector(overrides={"bogus": 1.0})

    def test_exponential_decay_endpoints(self):
        from repro.optim import exponential_decay

        assert exponential_decay(0, 100, 1e-2, 1e-4) == pytest.approx(1e-2)
        assert exponential_decay(100, 100, 1e-2, 1e-4) == pytest.approx(1e-4)
        mid = exponential_decay(50, 100, 1e-2, 1e-4)
        assert mid == pytest.approx(1e-3, rel=1e-6)  # log-linear midpoint
        with pytest.raises(ValueError):
            exponential_decay(1, 0, 1e-2, 1e-4)
