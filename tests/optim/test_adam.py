"""Unit tests for the dense Adam reference optimizer."""

import numpy as np
import pytest

from repro.optim import AdamConfig, DenseAdam, adam_update


class TestAdamKernel:
    def test_first_step_matches_hand_computation(self):
        cfg = AdamConfig(lr=0.1, beta1=0.9, beta2=0.999, eps=1e-8)
        p = np.array([[1.0]])
        g = np.array([[2.0]])
        m = np.zeros_like(p)
        v = np.zeros_like(p)
        p1, m1, v1 = adam_update(p, g, m, v, 1, cfg)
        # m1 = 0.1*2 = 0.2 ; v1 = 0.001*4 = 0.004
        assert m1[0, 0] == pytest.approx(0.2)
        assert v1[0, 0] == pytest.approx(0.004)
        # m_hat = 2, v_hat = 4 -> step = 0.1 * 2/(2+1e-8) ~= 0.1
        assert p1[0, 0] == pytest.approx(1.0 - 0.1, abs=1e-8)

    def test_zero_grad_still_moves_params(self):
        """The paper's Challenge 2: momentum keeps nonzero updates."""
        cfg = AdamConfig(lr=0.1)
        p = np.array([[1.0]])
        g = np.array([[2.0]])
        m = np.zeros_like(p)
        v = np.zeros_like(p)
        p, m, v = adam_update(p, g, m, v, 1, cfg)
        p2, m2, v2 = adam_update(p, np.zeros_like(p), m, v, 2, cfg)
        assert p2[0, 0] != p[0, 0]
        assert m2[0, 0] == pytest.approx(0.9 * m[0, 0])
        assert v2[0, 0] == pytest.approx(0.999 * v[0, 0])

    def test_step_zero_rejected(self):
        cfg = AdamConfig()
        z = np.zeros((1, 1))
        with pytest.raises(ValueError):
            adam_update(z, z, z, z, 0, cfg)

    def test_per_column_lr(self):
        cfg = AdamConfig(lr=np.array([0.1, 0.0]))
        p = np.ones((2, 2))
        g = np.ones((2, 2))
        m = np.zeros_like(p)
        v = np.zeros_like(p)
        p1, _, _ = adam_update(p, g, m, v, 1, cfg)
        assert np.all(p1[:, 0] < 1.0)
        np.testing.assert_allclose(p1[:, 1], 1.0)

    def test_weight_decay_decoupled(self):
        cfg = AdamConfig(lr=0.1, weight_decay=0.5)
        p = np.array([[1.0]])
        g = np.zeros((1, 1))
        m = np.zeros_like(p)
        v = np.zeros_like(p)
        p1, _, _ = adam_update(p, g, m, v, 1, cfg)
        # no gradient: only the decay term fires: p - lr*wd*p
        assert p1[0, 0] == pytest.approx(1.0 - 0.1 * 0.5)


class TestDenseAdam:
    def test_matches_kernel_over_steps(self):
        rng = np.random.default_rng(0)
        p0 = rng.normal(size=(5, 3))
        opt = DenseAdam(p0.copy(), AdamConfig(lr=0.01))
        p, m, v = p0.copy(), np.zeros_like(p0), np.zeros_like(p0)
        for t in range(1, 6):
            g = rng.normal(size=(5, 3))
            opt.step(g)
            p, m, v = adam_update(p, g, m, v, t, AdamConfig(lr=0.01))
        np.testing.assert_allclose(opt.params, p, rtol=1e-12)

    def test_step_sparse_equals_dense_with_zeros(self):
        rng = np.random.default_rng(1)
        p0 = rng.normal(size=(6, 4))
        a = DenseAdam(p0.copy())
        b = DenseAdam(p0.copy())
        ids = np.array([1, 4])
        g_rows = rng.normal(size=(2, 4))
        dense = np.zeros((6, 4))
        dense[ids] = g_rows
        a.step(dense)
        b.step_sparse(ids, g_rows)
        np.testing.assert_array_equal(a.params, b.params)

    def test_stats_charge_all_rows(self):
        p = np.zeros((10, 59))
        opt = DenseAdam(p)
        stats = opt.step(np.zeros_like(p))
        assert stats.rows_updated == 10
        assert stats.float_bytes == 7 * 10 * 59 * 8  # float64 here
        assert stats.counter_bytes == 0

    def test_updates_in_place_view(self):
        """Optimizer mutates the array it was given (selective offloading
        relies on updating the geometric block through a view)."""
        store = np.zeros((4, 10))
        opt = DenseAdam(store)
        opt.step(np.ones_like(store))
        assert np.all(store != 0.0)

    def test_peek_matches_commit(self):
        rng = np.random.default_rng(2)
        opt = DenseAdam(rng.normal(size=(5, 3)), AdamConfig(lr=0.05))
        for _ in range(3):
            opt.step(rng.normal(size=(5, 3)))
        ids = np.array([0, 2])
        g_rows = rng.normal(size=(2, 3))
        peeked = opt.peek_updated(ids, g_rows)
        opt.step_sparse(ids, g_rows)
        np.testing.assert_allclose(opt.params[ids], peeked, rtol=1e-14)

    def test_rewrite_rows_resets_moments(self):
        rng = np.random.default_rng(3)
        opt = DenseAdam(rng.normal(size=(4, 2)))
        opt.step(np.ones((4, 2)))
        opt.rewrite_rows(np.array([1]), np.zeros((1, 2)))
        assert np.all(opt.m[1] == 0.0)
        assert np.all(opt.v[1] == 0.0)
        assert np.all(opt.m[0] != 0.0)

    def test_bad_shapes_raise(self):
        opt = DenseAdam(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            opt.step(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            DenseAdam(np.zeros(5))
        with pytest.raises(ValueError):
            AdamConfig(lr=np.zeros(3)).lr_vector(2)
