"""Tests for the position learning-rate decay schedule in the systems."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.optim import AdamConfig, DeferredAdam, DenseAdam


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=130, width=24, height=18,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=121,
        )
    )


class TestConfigSchedule:
    def test_scale_endpoints(self):
        cfg = GSScaleConfig(position_lr_decay_steps=100,
                            position_lr_final_scale=0.01)
        assert cfg.position_lr_scale_at(0) == pytest.approx(1.0)
        assert cfg.position_lr_scale_at(100) == pytest.approx(0.01)
        mid = cfg.position_lr_scale_at(50)
        assert mid == pytest.approx(0.1, rel=1e-6)  # log-linear midpoint

    def test_disabled_returns_one(self):
        cfg = GSScaleConfig()
        assert cfg.position_lr_scale_at(500) == 1.0


class TestOptimizerSetLr:
    def test_dense_adam_set_lr(self):
        opt = DenseAdam(np.zeros((3, 2)), AdamConfig(lr=1.0))
        opt.set_lr(np.array([0.5, 0.0]))
        opt.step(np.ones((3, 2)))
        assert np.all(opt.params[:, 0] != 0.0)
        np.testing.assert_array_equal(opt.params[:, 1], 0.0)
        with pytest.raises(ValueError):
            opt.set_lr(np.zeros(3))

    def test_deferred_adam_set_lr(self):
        opt = DeferredAdam(np.zeros((3, 2)), AdamConfig(lr=1.0))
        opt.set_lr(np.array([0.5, 0.0]))
        opt.step(np.arange(3), np.ones((3, 2)))
        assert np.all(opt.params[:, 0] != 0.0)
        np.testing.assert_array_equal(opt.params[:, 1], 0.0)

    def test_deferred_matches_dense_under_decay(self):
        """With a per-step decaying lr and every row active, deferred and
        dense stay identical (restoration never engages)."""
        rng = np.random.default_rng(0)
        p0 = rng.normal(size=(4, 3))
        dense = DenseAdam(p0.copy(), AdamConfig(lr=0.1))
        deferred = DeferredAdam(p0.copy(), AdamConfig(lr=0.1))
        for t in range(8):
            lr = np.full(3, 0.1 * 0.9**t)
            dense.set_lr(lr)
            deferred.set_lr(lr)
            g = rng.normal(size=(4, 3))
            dense.step(g)
            deferred.step(np.arange(4), g)
        np.testing.assert_allclose(deferred.params, dense.params, rtol=1e-12)

    def test_deferred_drift_scales_with_decay_rate(self):
        """The current-lr restoration approximation (DeferredAdam.set_lr
        docstring) drifts proportionally to the per-step decay; at the
        3DGS-like rate it is negligible."""

        def run(decay_per_step):
            rng = np.random.default_rng(1)
            p0 = rng.normal(size=(6, 2))
            dense = DenseAdam(p0.copy(), AdamConfig(lr=0.01))
            deferred = DeferredAdam(p0.copy(), AdamConfig(lr=0.01))
            for t in range(20):
                lr = np.full(2, 0.01 * (1.0 - decay_per_step) ** t)
                dense.set_lr(lr)
                deferred.set_lr(lr)
                ids = np.sort(rng.choice(6, size=2, replace=False))
                g = rng.normal(size=(2, 2))
                full = np.zeros((6, 2))
                full[ids] = g
                dense.step(full)
                deferred.step(ids, g)
            diff = np.abs(deferred.materialized_params() - dense.params)
            return diff.max()

        # 3DGS decays the position lr 100x over 30k steps ~ 0.015%/step
        realistic = run(1.5e-4)
        aggressive = run(1e-2)
        assert realistic < 1e-4
        assert realistic < aggressive / 10


class TestSystemIntegration:
    def test_all_systems_apply_schedule(self, scene):
        """Position updates shrink over iterations under the schedule."""
        for system in ("gpu_only", "gsscale"):
            cfg = GSScaleConfig(
                system=system, scene_extent=scene.extent, ssim_lambda=0.0,
                mem_limit=1.0, seed=0,
                position_lr_decay_steps=10, position_lr_final_scale=1e-4,
            )
            s = create_system(scene.initial.copy(), cfg)
            moves = []
            for i in range(6):
                before = s.materialized_model().means.copy()
                s.step(scene.train_cameras[i % 3], scene.train_images[i % 3])
                after = s.materialized_model().means
                moves.append(np.abs(after - before).max())
            # late steps move positions far less than early ones
            assert moves[-1] < moves[0], system

    def test_scheduled_systems_stay_equivalent(self, scene):
        """The schedule must not break cross-system equivalence."""
        kw = dict(
            scene_extent=scene.extent, ssim_lambda=0.0, mem_limit=1.0,
            seed=0, position_lr_decay_steps=8,
        )
        a = create_system(scene.initial.copy(),
                          GSScaleConfig(system="gpu_only", **kw))
        b = create_system(scene.initial.copy(),
                          GSScaleConfig(system="gsscale_no_deferred", **kw))
        for i in range(5):
            a.step(scene.train_cameras[i % 3], scene.train_images[i % 3])
            b.step(scene.train_cameras[i % 3], scene.train_images[i % 3])
        a.finalize()
        b.finalize()
        np.testing.assert_allclose(
            a.materialized_model().params,
            b.materialized_model().params,
            rtol=1e-10,
            atol=1e-12,
        )
