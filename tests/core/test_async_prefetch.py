"""Tests of the out-of-core async prefetch leg and the view-locality
schedule.

Acceptance bar: an ``async_prefetch`` run is bit-identical to the
synchronous out-of-core run — the overlap moves the page-read off the
critical path, it never changes what is read, when it is accounted, or
what the optimizer computes. Plus: the double-buffer actually hits on
shard-local view schedules, the thread-safe ``DiskStore``
preload/adopt protocol rejects stale snapshots, and the trainer wires
hints and locality ordering through.
"""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.core import GSScaleConfig, Trainer, create_system, locality_view_order
from repro.core.stores import DiskStore
from repro.core.systems import TransferLedger
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import GaussianModel, layout
from repro.optim.base import AdamConfig
from repro.sim.memory import MemoryTracker

CLUSTER_CENTERS = np.array(
    [[-6.0, -6.0, 0.0], [6.0, -6.0, 0.0], [-6.0, 6.0, 0.0], [6.0, 6.0, 0.0]]
)


@pytest.fixture(scope="module")
def clustered():
    """Four well-separated clusters with one narrow camera per cluster.

    Each view frustum-culls to exactly one spatial shard, the regime the
    async leg is built for: the next view's shard is spilled and
    untouched while the current view renders, so the background snapshot
    stays valid and gets adopted.
    """
    rng = np.random.default_rng(3)
    per = 60
    means = np.concatenate(
        [c + rng.normal(scale=0.4, size=(per, 3)) for c in CLUSTER_CENTERS]
    )
    n = means.shape[0]
    log_scales = np.full((n, 3), np.log(0.05))
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    opacity_logits = rng.uniform(0.5, 1.5, size=n)
    sh = rng.normal(size=(n, 16, 3)) * 0.2
    model = GaussianModel.from_attributes(
        means, log_scales, quats, opacity_logits, sh, dtype=np.float64
    )
    cameras = [
        Camera.look_at(
            c + np.array([0.0, 0.0, 5.0]), c, up=(0.0, 1.0, 0.0),
            width=24, height=18, fov_x_deg=40.0,
        )
        for c in CLUSTER_CENTERS
    ]
    images = [np.zeros((18, 24, 3)) for _ in cameras]
    return model, cameras, images


def make_system(model, async_prefetch, **cfg):
    defaults = dict(
        system="outofcore", num_shards=4, resident_shards=1,
        scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
        async_prefetch=async_prefetch,
    )
    defaults.update(cfg)
    return create_system(model.copy(), GSScaleConfig(**defaults))


def run_hinted(model, cameras, images, async_prefetch, steps=8, **cfg):
    """Step loop issuing next-view hints, like the trainer does."""
    s = make_system(model, async_prefetch, **cfg)
    losses = []
    for i in range(steps):
        if i + 1 < steps:
            s.hint_next_view(cameras[(i + 1) % len(cameras)])
        losses.append(s.step(cameras[i % len(cameras)], images[i % len(cameras)]).loss)
    s.finalize()
    return s, losses


class TestBitIdentity:
    def test_async_matches_sync_on_clustered_views(self, clustered):
        model, cameras, images = clustered
        sync, loss_sync = run_hinted(model, cameras, images, False)
        asyn, loss_async = run_hinted(model, cameras, images, True)
        assert loss_sync == loss_async
        np.testing.assert_array_equal(
            sync.materialized_model().params,
            asyn.materialized_model().params,
        )

    def test_ledger_and_accounting_identical(self, clustered):
        """Adoption replays the exact page-in records of the synchronous
        schedule: same counts, same bytes, same PCIe channel."""
        model, cameras, images = clustered
        sync, _ = run_hinted(model, cameras, images, False)
        asyn, _ = run_hinted(model, cameras, images, True)
        for field in (
            "page_in_bytes", "page_out_bytes", "page_in_count",
            "page_out_count", "h2d_bytes", "d2h_bytes",
        ):
            assert getattr(sync.ledger, field) == getattr(asyn.ledger, field)
        assert sync.host_memory.peak_bytes == asyn.host_memory.peak_bytes

    def test_async_matches_sync_generic_scene(self):
        """Overlapping-frustum views (every snapshot goes stale) still
        agree bit-for-bit — staleness only costs hits, never numerics."""
        scene = build_scene(
            SyntheticSceneConfig(
                num_points=240, width=36, height=28,
                num_train_cameras=6, num_test_cameras=1,
                altitude=12.0, seed=11,
            )
        )
        results = {}
        for flag in (False, True):
            cfg = GSScaleConfig(
                system="outofcore", num_shards=4, resident_shards=1,
                scene_extent=scene.extent, ssim_lambda=0.2, mem_limit=1.0,
                seed=0, async_prefetch=flag,
            )
            t = Trainer(scene.initial.copy(), cfg)
            t.train(scene.train_cameras, scene.train_images, 10)
            results[flag] = t.system.materialized_model().params
        np.testing.assert_array_equal(results[False], results[True])


class TestOverlapActuallyHits:
    def test_hits_on_shard_local_schedule(self, clustered):
        model, cameras, images = clustered
        asyn, _ = run_hinted(model, cameras, images, True, steps=8)
        # steps 2..8 visit a cluster whose shard was prefetched while the
        # previous cluster rendered; at least most must adopt the buffer
        assert asyn.prefetch_hits >= 4
        assert asyn.prefetch_hits + asyn.prefetch_misses > 0

    def test_sync_run_counts_nothing(self, clustered):
        model, cameras, images = clustered
        sync, _ = run_hinted(model, cameras, images, False)
        assert sync.prefetch_hits == 0
        assert sync.prefetch_misses == 0
        assert sync.prefetch_staged_peak_bytes == 0

    def test_staging_double_buffer_is_accounted(self, clustered):
        """The async leg's buffers are real host memory: the high-water
        mark is reported (bounded by the budget's worth of pageable
        state), complementing the sim's staging_shards term."""
        model, cameras, images = clustered
        asyn, _ = run_hinted(model, cameras, images, True)
        per_shard = max(
            3 * layout.param_bytes(r.size, layout.NON_GEOMETRIC_DIM)
            for r in asyn.shard_rows
        )
        assert 0 < asyn.prefetch_staged_peak_bytes
        assert (
            asyn.prefetch_staged_peak_bytes
            <= asyn.resident_set.budget * per_shard
        )

    def test_trainer_issues_hints(self, clustered):
        model, cameras, images = clustered
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
            async_prefetch=True,
        )
        trainer = Trainer(model.copy(), cfg)
        trainer.train(cameras, images, 8)
        assert trainer.system.prefetch_hits >= 4

    def test_finalize_stops_the_worker(self, clustered):
        model, cameras, images = clustered
        asyn, _ = run_hinted(model, cameras, images, True)
        assert asyn._prefetcher is None
        # post-finalize hints are harmless no-ops
        asyn.hint_next_view(cameras[0])


class TestPreloadAdoptProtocol:
    def _store(self, tmp_path, ledger=None):
        return DiskStore(
            np.random.default_rng(0).normal(size=(12, 49)),
            layout.NON_GEOMETRIC_BLOCK, AdamConfig(lr=1e-2),
            MemoryTracker(), ledger if ledger is not None else TransferLedger(),
            spill_path=str(tmp_path / "shard"),
            forwarding=True, deferred=True,
        )

    def test_preload_none_while_resident(self, tmp_path):
        store = self._store(tmp_path)
        assert store.is_resident
        assert store.preload() is None

    def test_adopt_is_a_page_in(self, tmp_path):
        ledger = TransferLedger()
        store = self._store(tmp_path, ledger)
        before = store.params.copy()
        store.spill()
        pre = store.preload()
        assert pre is not None and pre.nbytes > 0
        pages = ledger.page_in_count
        assert store.adopt(pre)
        assert store.is_resident
        assert ledger.page_in_count == pages + 1  # accounted exactly once
        np.testing.assert_array_equal(store.params, before)  # bit-exact

    def test_adopt_rejects_after_page_in(self, tmp_path):
        store = self._store(tmp_path)
        store.spill()
        pre = store.preload()
        store.page_in()
        assert not store.adopt(pre)  # already resident

    def test_adopt_rejects_snapshot_from_before_checkpoint_restore(
        self, tmp_path
    ):
        """load_state_dict on a spilled store rewrites the spill files:
        it must invalidate outstanding preload snapshots like any other
        write, or a restore could resume from mixed old/new state."""
        store = self._store(tmp_path)
        store.spill()
        pre = store.preload()
        state = {
            k: np.asarray(v) + (1.0 if k != "steps" else 0)
            for k, v in store.state_dict().items()
        }
        store.load_state_dict(state)
        assert not store.adopt(pre)  # pre-restore snapshot is stale
        store.page_in()
        np.testing.assert_array_equal(store.params, state["params"])

    def test_adopt_rejects_stale_epoch(self, tmp_path):
        """A spill after the snapshot invalidates it: the spill wrote
        newer state (and may have raced the read)."""
        store = self._store(tmp_path)
        store.spill()
        pre = store.preload()
        store.page_in()
        store.optimizer.params += 1.0  # shard trained meanwhile
        store.spill()
        assert not store.adopt(pre)
        store.page_in()
        np.testing.assert_array_equal(
            store.params, store.optimizer.params
        )  # the stale buffer never leaked into the working set


class TestLocalityOrder:
    def test_is_a_permutation(self, clustered):
        _, cameras, _ = clustered
        order = locality_view_order(cameras)
        assert sorted(order.tolist()) == list(range(len(cameras)))

    def test_chains_nearest_neighbors(self):
        """Cameras along a line, given shuffled: the schedule must walk
        the line instead of jumping."""
        rng = np.random.default_rng(0)
        xs = np.arange(10, dtype=np.float64)
        perm = rng.permutation(10)
        cams = [
            Camera.look_at([x, 0.0, 5.0], [x, 0.0, 0.0], up=(0, 1, 0),
                           width=8, height=8)
            for x in xs[perm]
        ]
        order = locality_view_order(cams)
        walked = xs[perm][order]
        hops = np.abs(np.diff(walked)).sum()
        assert hops <= 2 * (xs.max() - xs.min())

    def test_locality_reduces_page_traffic(self, clustered):
        """The point of the schedule: grouping same-shard views pages
        less than ping-ponging between shards."""
        model, cameras, images = clustered
        # ping-pong: alternate clusters every step
        ping, _ = run_hinted(model, cameras, images, False, steps=8)
        # locality: 2 consecutive views per cluster (simulated revisit)
        grouped_cams = [cameras[i // 2] for i in range(8)]
        grouped_imgs = [images[i // 2] for i in range(8)]
        s = make_system(model, False)
        for cam, img in zip(grouped_cams, grouped_imgs):
            s.step(cam, img)
        s.finalize()
        assert s.ledger.page_in_count < ping.ledger.page_in_count

    def test_trainer_validates_view_order(self, clustered):
        model, cameras, images = clustered
        cfg = GSScaleConfig(system="gsscale", scene_extent=8.0)
        t = Trainer(model.copy(), cfg)
        with pytest.raises(ValueError, match="view_order"):
            t.train(cameras, images, 2, view_order="zigzag")
        with pytest.raises(ValueError, match="mutually exclusive"):
            t.train(cameras, images, 2, shuffle=True, view_order="locality")

    def test_trainer_locality_run(self, clustered):
        model, cameras, images = clustered
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
        )
        t = Trainer(model.copy(), cfg)
        hist = t.train(cameras, images, 8, view_order="locality")
        assert hist.num_iterations == 8
        assert np.isfinite(hist.final_loss)
