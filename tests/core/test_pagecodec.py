"""Unit tests for the page codecs behind the deep out-of-core tier.

The codecs carry every spilled page of the disk tier, so their contracts
are pinned directly: lossless round-trips are bit-exact for any dtype,
the float16 codec is tolerance-bounded *and idempotent* (repeated
encode/decode cycles converge after the first quantization — the property
that keeps spill/page-in loops from drifting), and the registry rejects
unknown names with an actionable error.
"""

import numpy as np
import pytest

from repro.core.pagecodec import (
    PAGE_CODECS,
    Float16Codec,
    LosslessCodec,
    RawCodec,
    get_page_codec,
)


def _page(seed=0, shape=(17, 49), dtype=np.float64):
    return np.random.default_rng(seed).normal(size=shape).astype(dtype)


class TestRegistry:
    def test_known_codecs(self):
        assert set(PAGE_CODECS) == {"raw", "float16", "lossless"}
        for name in PAGE_CODECS:
            assert get_page_codec(name).name == name

    def test_unknown_codec_error_names_choices(self):
        with pytest.raises(ValueError, match="unknown page codec"):
            get_page_codec("zstd")
        with pytest.raises(ValueError, match="float16"):
            get_page_codec("f16")

    def test_lossless_flags(self):
        assert get_page_codec("raw").lossless
        assert get_page_codec("lossless").lossless
        assert not get_page_codec("float16").lossless

    def test_storage_dtype(self):
        # all three checkpoint in the store dtype: the scaled float16
        # codec's decoded values can exceed half precision's native range
        for name in PAGE_CODECS:
            assert get_page_codec(name).storage_dtype is None


class TestRoundtrip:
    @pytest.mark.parametrize("codec_cls", [RawCodec, LosslessCodec])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_bit_exact(self, codec_cls, dtype):
        codec = codec_cls()
        arr = _page(dtype=dtype)
        out = codec.decode(codec.encode(arr), arr.shape, dtype)
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, arr)

    @pytest.mark.parametrize("codec_cls", [RawCodec, LosslessCodec])
    def test_noncontiguous_input(self, codec_cls):
        codec = codec_cls()
        arr = _page(shape=(17, 98))[:, ::2]  # strided view
        out = codec.decode(codec.encode(arr), arr.shape, arr.dtype)
        np.testing.assert_array_equal(out, arr)

    def test_decoded_pages_are_writable(self):
        for codec in PAGE_CODECS.values():
            arr = _page()
            out = codec.decode(codec.encode(arr), arr.shape, arr.dtype)
            out[0, 0] = 1.0  # the paged-in working set gets mutated

    def test_lossless_compresses_structured_pages(self):
        # fresh Adam moments are runs of zeros: exactly what the
        # byte-shuffle + zlib pipeline exists to exploit
        arr = np.zeros((64, 49))
        encoded = get_page_codec("lossless").encode(arr)
        assert len(encoded) < arr.nbytes / 10


class TestFloat16:
    def test_tolerance_bounded(self):
        codec = Float16Codec()
        arr = _page()
        out = codec.decode(codec.encode(arr), arr.shape, arr.dtype)
        # half precision: ~11 significand bits
        np.testing.assert_allclose(out, arr, rtol=1e-3, atol=1e-6)

    def test_idempotent(self):
        codec = Float16Codec()
        arr = _page(seed=3)
        first = codec.encode(arr)
        decoded = codec.decode(first, arr.shape, arr.dtype)
        assert codec.encode(decoded) == first

    def test_two_bytes_per_value_plus_column_header(self):
        arr = _page()
        encoded = Float16Codec().encode(arr)
        assert len(encoded) == 2 * arr.size + 2 * arr.shape[1]

    def test_beyond_native_f16_range_roundtrips(self):
        """The per-column scale re-centers each column into [0.5, 1):
        values far past f16's 65504 ceiling survive with full relative
        precision instead of clipping."""
        codec = Float16Codec()
        arr = np.array([[1e9, -3e8], [2e8, 1e9]])
        out = codec.decode(codec.encode(arr), arr.shape, np.float64)
        np.testing.assert_allclose(out, arr, rtol=1e-3)

    def test_tiny_adam_moments_survive(self):
        """The motivating case: second moments of nearly-converged
        parameters (~grad**2 ~ 1e-10) must not flush to zero — a zero v
        makes the next Adam step m/eps and detonates the trajectory."""
        codec = Float16Codec()
        arr = np.abs(_page(seed=7)) * 1e-10
        out = codec.decode(codec.encode(arr), arr.shape, np.float64)
        assert np.all(out[arr > 0] > 0)
        np.testing.assert_allclose(out, arr, rtol=1e-3)

    def test_zero_column_roundtrips(self):
        codec = Float16Codec()
        arr = np.zeros((5, 3))
        arr[:, 1] = np.arange(5)
        out = codec.decode(codec.encode(arr), arr.shape, np.float64)
        np.testing.assert_allclose(out, arr, rtol=1e-3)
        np.testing.assert_array_equal(out[:, 0], 0.0)
        np.testing.assert_array_equal(out[:, 2], 0.0)

    def test_mixed_magnitude_columns_scale_independently(self):
        codec = Float16Codec()
        arr = np.column_stack([
            np.linspace(1e-9, 2e-9, 8),
            np.linspace(1.0, 2.0, 8),
            np.linspace(1e7, 2e7, 8),
        ])
        out = codec.decode(codec.encode(arr), arr.shape, np.float64)
        np.testing.assert_allclose(out, arr, rtol=1e-3)

    def test_upcast_is_exact(self):
        # f16 -> f64 is exact, so decode(encode(decode(...))) fixes
        arr = _page(seed=5)
        codec = Float16Codec()
        once = codec.decode(codec.encode(arr), arr.shape, np.float64)
        twice = codec.decode(codec.encode(once), arr.shape, np.float64)
        np.testing.assert_array_equal(once, twice)
