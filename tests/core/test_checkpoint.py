"""Tests for checkpoint save/resume."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import (
    CheckpointReader,
    load_checkpoint,
    resume_model,
    save_checkpoint,
)
from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=140, width=24, height=18,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=101,
        )
    )


def cfg(scene, system):
    return GSScaleConfig(
        system=system, scene_extent=scene.extent, ssim_lambda=0.0,
        mem_limit=1.0, seed=0,
    )


def steps(system, scene, count, start=0):
    for i in range(start, start + count):
        system.step(
            scene.train_cameras[i % 3], scene.train_images[i % 3]
        )


@pytest.mark.parametrize(
    "system_name", ["gpu_only", "baseline_offload", "gsscale_no_deferred",
                    "gsscale"]
)
class TestResume:
    def test_resume_continues_identically(self, tmp_path, scene, system_name):
        """train 6 == train 3, checkpoint, restore, train 3."""
        path = str(tmp_path / f"{system_name}.npz")

        straight = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(straight, scene, 6)
        straight.finalize()

        first = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(first, scene, 3)
        save_checkpoint(path, first)

        resumed = create_system(scene.initial.copy(), cfg(scene, system_name))
        load_checkpoint(path, resumed)
        steps(resumed, scene, 3, start=3)
        resumed.finalize()

        # checkpointing commits pending gradients, which reorders the
        # forwarding pipeline's commit point — identical math, so results
        # must agree to float/approximation tolerance
        np.testing.assert_allclose(
            resumed.materialized_model().params,
            straight.materialized_model().params,
            rtol=1e-6,
            atol=1e-8,
        )

    def test_iteration_counter_restored(self, tmp_path, scene, system_name):
        path = str(tmp_path / f"{system_name}_it.npz")
        s = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(s, scene, 4)
        save_checkpoint(path, s)
        fresh = create_system(scene.initial.copy(), cfg(scene, system_name))
        load_checkpoint(path, fresh)
        assert fresh.iteration == 4


class TestMidRunEquivalence:
    """Save at step N, resume, train N more: bit-compare against an
    uninterrupted 2N-step run.

    Checkpointing commits pending/lazy state, so the uninterrupted control
    finalizes at step N too (identical math at the same point); with that
    alignment, every placement — including the sharded and out-of-core
    systems — must agree to the last bit.
    """

    N = 3

    @pytest.mark.parametrize(
        "system_name,extra",
        [
            ("gpu_only", {}),
            ("baseline_offload", {}),
            ("sharded", {"num_shards": 3}),
            ("outofcore", {"num_shards": 3, "resident_shards": 1}),
            # deep out-of-core tier: the lossless page codec, write-behind
            # spilling, and the depth-2 staging queue are all pure placement
            # — each must checkpoint/resume bit-exactly too
            (
                "outofcore",
                {"num_shards": 3, "resident_shards": 1,
                 "page_codec": "lossless"},
            ),
            (
                "outofcore",
                {"num_shards": 3, "resident_shards": 1,
                 "write_behind": True},
            ),
            (
                "outofcore",
                {"num_shards": 3, "resident_shards": 1,
                 "page_codec": "lossless", "write_behind": True,
                 "async_prefetch": True, "prefetch_depth": 2},
            ),
        ],
    )
    def test_resume_bit_identical(self, tmp_path, scene, system_name, extra):
        n = self.N
        config = cfg(scene, system_name)
        for key, value in extra.items():
            setattr(config, key, value)

        def fresh():
            import dataclasses

            return create_system(
                scene.initial.copy(), dataclasses.replace(config)
            )

        straight = fresh()
        steps(straight, scene, n)
        straight.finalize()  # align with save_checkpoint's settling point
        steps(straight, scene, n, start=n)
        straight.finalize()

        path = str(tmp_path / f"{system_name}_midrun.npz")
        first = fresh()
        steps(first, scene, n)
        save_checkpoint(path, first)

        resumed = fresh()
        load_checkpoint(path, resumed)
        assert resumed.iteration == n
        steps(resumed, scene, n, start=n)
        resumed.finalize()

        np.testing.assert_array_equal(
            resumed.materialized_model().params,
            straight.materialized_model().params,
        )

    def test_checkpoint_written_mid_write_behind(self, tmp_path, scene):
        """A checkpoint taken right after a step — with dirty page-outs
        from that step still queued on the background writer — must equal
        the synchronous-spill checkpoint array for array: ``save_checkpoint``
        fences the writer before serializing. Resuming from it then
        continues bit-identically."""

        def build(write_behind):
            config = cfg(scene, "outofcore")
            config.num_shards = 3
            config.resident_shards = 1
            config.write_behind = write_behind
            import dataclasses

            return create_system(
                scene.initial.copy(), dataclasses.replace(config)
            )

        paths = {}
        for wb in (False, True):
            s = build(wb)
            steps(s, scene, self.N)
            # deliberately no flush/finalize here: with write-behind on,
            # the last step's page-outs are (or were) in flight
            if wb:
                assert s.write_behind_jobs > 0
            path = str(tmp_path / f"wb_{wb}.npz")
            save_checkpoint(path, s)
            paths[wb] = path
        with np.load(paths[False]) as sync, np.load(paths[True]) as behind:
            assert set(sync.files) == set(behind.files)
            for key in sync.files:
                np.testing.assert_array_equal(
                    sync[key], behind[key], err_msg=key
                )

        resumed = build(True)
        load_checkpoint(paths[True], resumed)
        steps(resumed, scene, self.N, start=self.N)
        resumed.finalize()

        straight = build(False)
        steps(straight, scene, self.N)
        straight.finalize()
        steps(straight, scene, self.N, start=self.N)
        straight.finalize()
        np.testing.assert_array_equal(
            resumed.materialized_model().params,
            straight.materialized_model().params,
        )

    def test_outofcore_resume_matches_sharded_resume(self, tmp_path, scene):
        """Placement changes nothing across a checkpoint boundary either:
        the resumed out-of-core run equals the resumed in-memory run."""
        results = {}
        for name, extra in (
            ("sharded", {"num_shards": 3}),
            ("outofcore", {"num_shards": 3, "resident_shards": 1}),
        ):
            config = cfg(scene, name)
            for key, value in extra.items():
                setattr(config, key, value)
            s = create_system(scene.initial.copy(), config)
            steps(s, scene, self.N)
            path = str(tmp_path / f"{name}_cross.npz")
            save_checkpoint(path, s)
            import dataclasses

            resumed = create_system(
                scene.initial.copy(), dataclasses.replace(config)
            )
            load_checkpoint(path, resumed)
            steps(resumed, scene, self.N, start=self.N)
            resumed.finalize()
            results[name] = resumed.materialized_model().params
        np.testing.assert_array_equal(
            results["sharded"], results["outofcore"]
        )


class TestValidation:
    def test_system_mismatch_rejected(self, tmp_path, scene):
        path = str(tmp_path / "a.npz")
        s = create_system(scene.initial.copy(), cfg(scene, "gpu_only"))
        steps(s, scene, 1)
        save_checkpoint(path, s)
        other = create_system(scene.initial.copy(), cfg(scene, "gsscale"))
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_resume_model_extraction(self, tmp_path, scene):
        for name in ("gpu_only", "gsscale"):
            path = str(tmp_path / f"{name}_m.npz")
            s = create_system(scene.initial.copy(), cfg(scene, name))
            steps(s, scene, 2)
            save_checkpoint(path, s)
            model = resume_model(path)
            np.testing.assert_allclose(
                model.params, s.materialized_model().params, rtol=1e-12
            )


def _write_checkpoint(path, num_gaussians, blocks):
    """Hand-craft a version-2 checkpoint from ``(prefix, start, stop,
    rows, params)`` block tuples — the reader's format contract, without
    going through a training system."""
    arrays = {
        "version": np.array(2),
        "system": np.array("synthetic"),
        "iteration": np.array(0),
        "num_gaussians": np.array(num_gaussians),
    }
    for prefix, start, stop, rows, params in blocks:
        p = f"{prefix}_" if prefix else ""
        arrays[p + "params"] = params
        arrays[p + "cols"] = np.array([start, stop])
        if rows is not None:
            arrays[p + "rows"] = np.asarray(rows)
    np.savez_compressed(path, **arrays)
    return str(path)


class TestReaderEdgeCases:
    """Lazy ``CheckpointReader`` against hand-crafted block layouts: the
    shapes real spilled/sharded checkpoints can take (a spatial shard that
    owns zero Gaussians, a block only partially overlapping the requested
    columns, half-precision blocks next to float64 geometry) plus the
    coverage failure the reader must refuse."""

    def test_empty_shard_block(self, tmp_path):
        """A spatial shard can own zero Gaussians (nothing landed in its
        cell); its zero-row block must assemble cleanly and count nothing
        toward coverage."""
        n = 6
        full = np.arange(n * 4, dtype=np.float64).reshape(n, 4)
        path = _write_checkpoint(
            tmp_path / "empty.npz", n,
            [
                ("geo", 0, 2, None, full[:, 0:2]),
                ("shard0", 2, 4, np.arange(n), full[:, 2:4]),
                ("shard1", 2, 4, np.empty(0, dtype=np.int64),
                 np.empty((0, 2), dtype=np.float64)),
            ],
        )
        with CheckpointReader(path) as reader:
            assert len(reader.blocks()) == 3
            np.testing.assert_array_equal(
                reader.assemble_columns(slice(0, 4)), full
            )

    def test_partial_final_block(self, tmp_path):
        """Requested columns that only clip the final block: the reader
        slices the overlap instead of loading (or double-counting) the
        whole block."""
        n = 5
        full = np.arange(n * 6, dtype=np.float64).reshape(n, 6)
        path = _write_checkpoint(
            tmp_path / "partial.npz", n,
            [
                ("a", 0, 3, None, full[:, 0:3]),
                ("b", 3, 6, None, full[:, 3:6]),
            ],
        )
        with CheckpointReader(path) as reader:
            np.testing.assert_array_equal(
                reader.assemble_columns(slice(2, 5)), full[:, 2:5]
            )
            # request entirely inside the final block
            np.testing.assert_array_equal(
                reader.assemble_columns(slice(4, 6)), full[:, 4:6]
            )
            # iteration yields only the overlapping slices
            spans = [
                (csl.start, csl.stop, values.shape)
                for _, csl, values in reader.iter_column_blocks(slice(2, 5))
            ]
            assert spans == [(2, 3, (n, 1)), (3, 5, (n, 2))]

    def test_uncovered_columns_raise(self, tmp_path):
        n = 4
        full = np.ones((n, 3))
        path = _write_checkpoint(
            tmp_path / "gap.npz", n, [("a", 0, 3, None, full)]
        )
        with CheckpointReader(path) as reader:
            with pytest.raises(ValueError, match="does not cover"):
                reader.assemble_columns(slice(0, 5))
            with pytest.raises(ValueError, match="does not cover"):
                reader.assemble_columns(slice(10, 12))

    def test_missing_shard_rows_raise(self, tmp_path):
        """Row coverage counts too: a sharded column range where one
        shard's rows are absent is an incomplete checkpoint, not zeros."""
        n = 6
        rows = np.arange(3)  # shard covering half the rows only
        path = _write_checkpoint(
            tmp_path / "rows.npz", n,
            [("shard0", 0, 2, rows, np.ones((3, 2)))],
        )
        with CheckpointReader(path) as reader:
            with pytest.raises(ValueError, match="does not cover"):
                reader.assemble_columns(slice(0, 2))

    def test_mixed_dtype_blocks_promote(self, tmp_path):
        """float16 blocks next to float64 blocks assemble at float64 —
        whichever order the blocks arrive in, no block loses precision."""
        n = 4
        f64 = np.linspace(1.0, 2.0, n * 2).reshape(n, 2)
        f16 = np.linspace(-1.0, 1.0, n * 2).reshape(n, 2).astype(np.float16)
        for order_flip in (False, True):
            blocks = [
                ("lo", 0, 2, None, f16 if order_flip else f64),
                ("hi", 2, 4, None, f64 if order_flip else f16),
            ]
            path = _write_checkpoint(
                tmp_path / f"mixed{order_flip}.npz", n, blocks
            )
            with CheckpointReader(path) as reader:
                out = reader.assemble_columns(slice(0, 4))
                assert out.dtype == np.float64
                lo, hi = (f16, f64) if order_flip else (f64, f16)
                # f16 -> f64 upcast is exact: bit-compare both halves
                np.testing.assert_array_equal(out[:, 0:2], lo.astype(np.float64))
                np.testing.assert_array_equal(out[:, 2:4], hi.astype(np.float64))
