"""Tests for checkpoint save/resume."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import load_checkpoint, resume_model, save_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=140, width=24, height=18,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=101,
        )
    )


def cfg(scene, system):
    return GSScaleConfig(
        system=system, scene_extent=scene.extent, ssim_lambda=0.0,
        mem_limit=1.0, seed=0,
    )


def steps(system, scene, count, start=0):
    for i in range(start, start + count):
        system.step(
            scene.train_cameras[i % 3], scene.train_images[i % 3]
        )


@pytest.mark.parametrize(
    "system_name", ["gpu_only", "baseline_offload", "gsscale_no_deferred",
                    "gsscale"]
)
class TestResume:
    def test_resume_continues_identically(self, tmp_path, scene, system_name):
        """train 6 == train 3, checkpoint, restore, train 3."""
        path = str(tmp_path / f"{system_name}.npz")

        straight = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(straight, scene, 6)
        straight.finalize()

        first = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(first, scene, 3)
        save_checkpoint(path, first)

        resumed = create_system(scene.initial.copy(), cfg(scene, system_name))
        load_checkpoint(path, resumed)
        steps(resumed, scene, 3, start=3)
        resumed.finalize()

        # checkpointing commits pending gradients, which reorders the
        # forwarding pipeline's commit point — identical math, so results
        # must agree to float/approximation tolerance
        np.testing.assert_allclose(
            resumed.materialized_model().params,
            straight.materialized_model().params,
            rtol=1e-6,
            atol=1e-8,
        )

    def test_iteration_counter_restored(self, tmp_path, scene, system_name):
        path = str(tmp_path / f"{system_name}_it.npz")
        s = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(s, scene, 4)
        save_checkpoint(path, s)
        fresh = create_system(scene.initial.copy(), cfg(scene, system_name))
        load_checkpoint(path, fresh)
        assert fresh.iteration == 4


class TestValidation:
    def test_system_mismatch_rejected(self, tmp_path, scene):
        path = str(tmp_path / "a.npz")
        s = create_system(scene.initial.copy(), cfg(scene, "gpu_only"))
        steps(s, scene, 1)
        save_checkpoint(path, s)
        other = create_system(scene.initial.copy(), cfg(scene, "gsscale"))
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_resume_model_extraction(self, tmp_path, scene):
        for name in ("gpu_only", "gsscale"):
            path = str(tmp_path / f"{name}_m.npz")
            s = create_system(scene.initial.copy(), cfg(scene, name))
            steps(s, scene, 2)
            save_checkpoint(path, s)
            model = resume_model(path)
            np.testing.assert_allclose(
                model.params, s.materialized_model().params, rtol=1e-12
            )
