"""Tests for checkpoint save/resume."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import load_checkpoint, resume_model, save_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=140, width=24, height=18,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=101,
        )
    )


def cfg(scene, system):
    return GSScaleConfig(
        system=system, scene_extent=scene.extent, ssim_lambda=0.0,
        mem_limit=1.0, seed=0,
    )


def steps(system, scene, count, start=0):
    for i in range(start, start + count):
        system.step(
            scene.train_cameras[i % 3], scene.train_images[i % 3]
        )


@pytest.mark.parametrize(
    "system_name", ["gpu_only", "baseline_offload", "gsscale_no_deferred",
                    "gsscale"]
)
class TestResume:
    def test_resume_continues_identically(self, tmp_path, scene, system_name):
        """train 6 == train 3, checkpoint, restore, train 3."""
        path = str(tmp_path / f"{system_name}.npz")

        straight = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(straight, scene, 6)
        straight.finalize()

        first = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(first, scene, 3)
        save_checkpoint(path, first)

        resumed = create_system(scene.initial.copy(), cfg(scene, system_name))
        load_checkpoint(path, resumed)
        steps(resumed, scene, 3, start=3)
        resumed.finalize()

        # checkpointing commits pending gradients, which reorders the
        # forwarding pipeline's commit point — identical math, so results
        # must agree to float/approximation tolerance
        np.testing.assert_allclose(
            resumed.materialized_model().params,
            straight.materialized_model().params,
            rtol=1e-6,
            atol=1e-8,
        )

    def test_iteration_counter_restored(self, tmp_path, scene, system_name):
        path = str(tmp_path / f"{system_name}_it.npz")
        s = create_system(scene.initial.copy(), cfg(scene, system_name))
        steps(s, scene, 4)
        save_checkpoint(path, s)
        fresh = create_system(scene.initial.copy(), cfg(scene, system_name))
        load_checkpoint(path, fresh)
        assert fresh.iteration == 4


class TestMidRunEquivalence:
    """Save at step N, resume, train N more: bit-compare against an
    uninterrupted 2N-step run.

    Checkpointing commits pending/lazy state, so the uninterrupted control
    finalizes at step N too (identical math at the same point); with that
    alignment, every placement — including the sharded and out-of-core
    systems — must agree to the last bit.
    """

    N = 3

    @pytest.mark.parametrize(
        "system_name,extra",
        [
            ("gpu_only", {}),
            ("baseline_offload", {}),
            ("sharded", {"num_shards": 3}),
            ("outofcore", {"num_shards": 3, "resident_shards": 1}),
        ],
    )
    def test_resume_bit_identical(self, tmp_path, scene, system_name, extra):
        n = self.N
        config = cfg(scene, system_name)
        for key, value in extra.items():
            setattr(config, key, value)

        def fresh():
            import dataclasses

            return create_system(
                scene.initial.copy(), dataclasses.replace(config)
            )

        straight = fresh()
        steps(straight, scene, n)
        straight.finalize()  # align with save_checkpoint's settling point
        steps(straight, scene, n, start=n)
        straight.finalize()

        path = str(tmp_path / f"{system_name}_midrun.npz")
        first = fresh()
        steps(first, scene, n)
        save_checkpoint(path, first)

        resumed = fresh()
        load_checkpoint(path, resumed)
        assert resumed.iteration == n
        steps(resumed, scene, n, start=n)
        resumed.finalize()

        np.testing.assert_array_equal(
            resumed.materialized_model().params,
            straight.materialized_model().params,
        )

    def test_outofcore_resume_matches_sharded_resume(self, tmp_path, scene):
        """Placement changes nothing across a checkpoint boundary either:
        the resumed out-of-core run equals the resumed in-memory run."""
        results = {}
        for name, extra in (
            ("sharded", {"num_shards": 3}),
            ("outofcore", {"num_shards": 3, "resident_shards": 1}),
        ):
            config = cfg(scene, name)
            for key, value in extra.items():
                setattr(config, key, value)
            s = create_system(scene.initial.copy(), config)
            steps(s, scene, self.N)
            path = str(tmp_path / f"{name}_cross.npz")
            save_checkpoint(path, s)
            import dataclasses

            resumed = create_system(
                scene.initial.copy(), dataclasses.replace(config)
            )
            load_checkpoint(path, resumed)
            steps(resumed, scene, self.N, start=self.N)
            resumed.finalize()
            results[name] = resumed.materialized_model().params
        np.testing.assert_array_equal(
            results["sharded"], results["outofcore"]
        )


class TestValidation:
    def test_system_mismatch_rejected(self, tmp_path, scene):
        path = str(tmp_path / "a.npz")
        s = create_system(scene.initial.copy(), cfg(scene, "gpu_only"))
        steps(s, scene, 1)
        save_checkpoint(path, s)
        other = create_system(scene.initial.copy(), cfg(scene, "gsscale"))
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_resume_model_extraction(self, tmp_path, scene):
        for name in ("gpu_only", "gsscale"):
            path = str(tmp_path / f"{name}_m.npz")
            s = create_system(scene.initial.copy(), cfg(scene, name))
            steps(s, scene, 2)
            save_checkpoint(path, s)
            model = resume_model(path)
            np.testing.assert_allclose(
                model.params, s.materialized_model().params, rtol=1e-12
            )
