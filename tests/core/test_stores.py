"""Unit tests of the parameter-placement stores and the conservation
invariants every system must uphold: ledger bytes match staged row counts,
trackers return to baseline after each step, and the peak-memory ordering
of the paper holds functionally."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.core.stores import DeviceStore, HostStore, HybridStore, ShardedStore
from repro.core.systems import TransferLedger
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.optim.base import AdamConfig, SparseOptimizer
from repro.sim.memory import MemoryTracker


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=180, width=30, height=20,
            num_train_cameras=4, num_test_cameras=1,
            altitude=9.0, seed=77,
        )
    )


def _rows(n, dim, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


class TestDeviceStore:
    def make(self, n=20):
        memory = MemoryTracker()
        store = DeviceStore(
            _rows(n, layout.GEOMETRIC_DIM),
            layout.GEOMETRIC_BLOCK,
            AdamConfig(lr=1e-2),
            memory,
            label="geo",
        )
        return store, memory

    def test_resident_charges(self):
        _store, memory = self.make(20)
        state = layout.param_bytes(20, layout.GEOMETRIC_DIM)
        live = memory.live_by_category()
        assert live["geo_params"] == state
        assert live["geo_grads"] == state
        assert live["geo_opt_states"] == 2 * state

    def test_stage_is_free_and_synchronous_update(self):
        store, memory = self.make(10)
        before = memory.live_bytes
        ids = np.array([1, 3, 7])
        vals = store.stage(ids)
        np.testing.assert_array_equal(vals, store.params[ids])
        assert memory.live_bytes == before  # device staging costs nothing
        old = store.params[ids].copy()
        store.return_grads(ids, np.ones((3, store.dim)))
        store.unstage(ids)
        assert not np.allclose(store.params[ids], old)  # applied immediately

    def test_geometry_views(self):
        store, _ = self.make(5)
        means, log_scales, quats = store.geometry()
        assert means.shape == (5, 3)
        assert log_scales.shape == (5, 3)
        assert quats.shape == (5, 4)
        np.testing.assert_array_equal(means, store.params[:, 0:3])

    def test_optimizer_satisfies_protocol(self):
        store, _ = self.make(4)
        assert isinstance(store.optimizer, SparseOptimizer)


class TestHostStore:
    def make(self, n=20, forwarding=False, deferred=False):
        memory = MemoryTracker()
        ledger = TransferLedger()
        store = HostStore(
            _rows(n, layout.NON_GEOMETRIC_DIM),
            layout.NON_GEOMETRIC_BLOCK,
            AdamConfig(lr=1e-2),
            memory,
            ledger,
            forwarding=forwarding,
            deferred=deferred,
        )
        return store, memory, ledger

    def test_stage_charges_and_records(self):
        store, memory, ledger = self.make(20)
        ids = np.array([0, 5, 6, 19])
        store.stage(ids)
        staged = ids.size * store.dim * 4
        assert memory.live_by_category()["staged_params"] == staged
        assert memory.live_by_category()["staged_grads"] == staged
        assert ledger.h2d_bytes == staged
        store.unstage(ids)
        assert ledger.d2h_bytes == staged
        assert memory.live_bytes == 0

    def test_unstage_without_return_skips_d2h(self):
        store, memory, ledger = self.make(8)
        ids = np.array([2, 4])
        store.stage(ids)
        store.unstage(ids, returned=False)
        assert ledger.d2h_bytes == 0
        assert memory.live_bytes == 0

    def test_forwarding_pends_until_commit(self):
        store, _, _ = self.make(10, forwarding=True)
        ids = np.array([1, 2])
        committed = store.params[ids].copy()
        store.return_grads(ids, np.ones((2, store.dim)))
        np.testing.assert_array_equal(store.params[ids], committed)
        # staged values peek through the pending update
        peeked = store.stage(ids)
        store.unstage(ids)
        assert not np.allclose(peeked, committed)
        store.commit()
        np.testing.assert_allclose(store.params[ids], peeked)

    def test_materialize_includes_pending(self):
        store, _, _ = self.make(10, forwarding=True, deferred=True)
        ids = np.array([3, 4])
        store.return_grads(ids, np.ones((2, store.dim)))
        mid = store.materialize()
        store.flush()
        np.testing.assert_allclose(store.materialize(), mid)

    def test_deferred_requires_forwarding(self):
        with pytest.raises(ValueError):
            self.make(4, forwarding=False, deferred=True)


class TestHybridStore:
    def make(self, n=12):
        memory = MemoryTracker()
        ledger = TransferLedger()
        geo = DeviceStore(
            _rows(n, layout.GEOMETRIC_DIM, seed=1),
            layout.GEOMETRIC_BLOCK,
            AdamConfig(lr=1e-2),
            memory,
            label="geo",
        )
        host = HostStore(
            _rows(n, layout.NON_GEOMETRIC_DIM, seed=2),
            layout.NON_GEOMETRIC_BLOCK,
            AdamConfig(lr=1e-2),
            memory,
            ledger,
            forwarding=True,
            deferred=True,
        )
        return HybridStore([geo, host]), memory, ledger

    def test_stage_assembles_packed_rows(self):
        hybrid, _, _ = self.make(12)
        ids = np.array([0, 4, 11])
        rows = hybrid.stage(ids)
        assert rows.shape == (3, layout.PARAM_DIM)
        np.testing.assert_array_equal(
            rows[:, layout.GEOMETRIC_SLICE], hybrid.children[0].params[ids]
        )
        hybrid.unstage(ids)

    def test_return_grads_splits_columns(self):
        hybrid, _, _ = self.make(12)
        ids = np.array([2, 3])
        grads = np.ones((2, layout.PARAM_DIM))
        geo_before = hybrid.children[0].params[ids].copy()
        hybrid.return_grads(ids, grads)
        # device child applied immediately, host child pended
        assert not np.allclose(hybrid.children[0].params[ids], geo_before)
        assert hybrid.children[1]._pending_ids is not None

    def test_materialize_shape_and_blocks(self):
        hybrid, _, _ = self.make(7)
        full = hybrid.materialize()
        assert full.shape == (7, layout.PARAM_DIM)
        np.testing.assert_array_equal(
            full[:, layout.GEOMETRIC_SLICE], hybrid.children[0].params
        )

    def test_disjoint_blocks_enforced(self):
        geo, _, _ = self.make(5)
        with pytest.raises(ValueError):
            HybridStore([geo.children[1], geo.children[0]])  # out of order


class TestShardedStore:
    def test_membership_and_roundtrip(self):
        memory = MemoryTracker()  # aggregate parent of the per-shard trackers
        rows = [np.array([0, 2, 4]), np.array([1, 3])]
        stores = [
            DeviceStore(
                _rows(r.size, layout.PARAM_DIM, seed=k),
                layout.ALL_BLOCK,
                AdamConfig(lr=1e-2),
                MemoryTracker(parent=memory),
            )
            for k, r in enumerate(rows)
        ]
        sharded = ShardedStore(rows, stores)
        assert sharded.num_rows == 5
        ids = np.array([1, 2, 4])
        staged = sharded.stage(ids)
        np.testing.assert_array_equal(staged[0], stores[1].params[0])  # id 1
        np.testing.assert_array_equal(staged[1], stores[0].params[1])  # id 2
        full = sharded.materialize()
        np.testing.assert_array_equal(full[[0, 2, 4]], stores[0].params)
        np.testing.assert_array_equal(full[[1, 3]], stores[1].params)


def run_steps(scene, system, steps=3, **cfg):
    defaults = dict(
        system=system, scene_extent=scene.extent, ssim_lambda=0.0,
        mem_limit=1.0, seed=0,
    )
    defaults.update(cfg)
    s = create_system(scene.initial.copy(), GSScaleConfig(**defaults))
    reports = []
    for i in range(steps):
        reports.append(
            s.step(scene.train_cameras[i % len(scene.train_cameras)],
                   scene.train_images[i % len(scene.train_images)])
        )
    return s, reports


ALL_SYSTEMS = ("gpu_only", "baseline_offload", "gsscale_no_deferred",
               "gsscale", "sharded")

#: staged columns per system (what one staged row costs on the PCIe bus)
STAGED_DIMS = {
    "gpu_only": 0,
    "baseline_offload": layout.PARAM_DIM,
    "gsscale_no_deferred": layout.NON_GEOMETRIC_DIM,
    "gsscale": layout.NON_GEOMETRIC_DIM,
    "sharded": layout.NON_GEOMETRIC_DIM,
}


class TestConservationInvariants:
    """System-level invariants the store layer must conserve."""

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_ledger_bytes_match_staged_rows(self, scene, system):
        """Per-step H2D and D2H bytes equal staged-row count times the
        system's staged column width — no traffic invented or lost."""
        s, reports = run_steps(scene, system, steps=4)
        staged_rows = sum(r.num_visible for r in reports)
        expected = staged_rows * STAGED_DIMS[system] * 4
        assert s.ledger.h2d_bytes == expected
        assert s.ledger.d2h_bytes == expected

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_tracker_returns_to_baseline_each_step(self, scene, system):
        """Staging windows and activations are transient: live bytes after
        every step equal the resident footprint right after setup."""
        defaults = dict(
            system=system, scene_extent=scene.extent, ssim_lambda=0.0,
            mem_limit=1.0, seed=0,
        )
        s = create_system(scene.initial.copy(), GSScaleConfig(**defaults))
        baseline = s.memory.live_bytes
        for i in range(3):
            s.step(scene.train_cameras[i % len(scene.train_cameras)],
                   scene.train_images[i % len(scene.train_images)])
            assert s.memory.live_bytes == baseline
            for cat, live in s.memory.live_by_category().items():
                if cat in ("staged_params", "staged_grads", "activations"):
                    assert live == 0, cat

    def test_peak_memory_ordering(self, scene):
        """At fixed scene size: gpu_only > gsscale > baseline_offload
        (full residency > 17% residency + staged window > staged-only)."""
        peaks = {
            system: run_steps(scene, system, steps=2)[0].memory.peak_bytes
            for system in ("gpu_only", "gsscale", "baseline_offload")
        }
        assert peaks["gpu_only"] > peaks["gsscale"] > peaks["baseline_offload"]

    def test_sharded_ledgers_roll_up_exactly(self, scene):
        """Per-shard ledgers partition the aggregate ledger."""
        s, _ = run_steps(scene, "sharded", steps=3, num_shards=3)
        reports = s.shard_reports()
        assert sum(r.h2d_bytes for r in reports) == s.ledger.h2d_bytes
        assert sum(r.d2h_bytes for r in reports) == s.ledger.d2h_bytes
        assert sum(r.h2d_count for r in reports) == s.ledger.h2d_count

    def test_failed_staging_leaves_nothing_charged(self, scene):
        """An OOM partway through staging (some shards already charged)
        unwinds completely: live bytes return to the resident baseline,
        so an OOM-probing caller can keep using the system."""
        probe, _ = run_steps(scene, "sharded", steps=1, num_shards=2)
        worst = max(t.peak_bytes for t in probe.shard_trackers)
        s = create_system(
            scene.initial.copy(),
            GSScaleConfig(
                system="sharded", num_shards=2, scene_extent=scene.extent,
                ssim_lambda=0.0, mem_limit=1.0, seed=0,
                shard_device_capacity_bytes=worst // 2,
            ),
        )
        baseline = s.memory.live_bytes
        with pytest.raises(MemoryError):
            s.step(scene.train_cameras[0], scene.train_images[0])
        assert s.memory.live_bytes == baseline
        for tracker in s.shard_trackers:
            for cat in ("staged_params", "staged_grads"):
                assert tracker.live_by_category().get(cat, 0) == 0

    def test_sharded_trackers_roll_up(self, scene):
        """Per-shard live bytes sum into the aggregate tracker (which also
        carries the shared activations)."""
        s, _ = run_steps(scene, "sharded", steps=2, num_shards=3)
        shard_live = sum(t.live_bytes for t in s.shard_trackers)
        assert s.memory.live_bytes == shard_live  # activations freed
        assert s.memory.peak_bytes >= max(
            t.peak_bytes for t in s.shard_trackers
        )
