"""Functional equivalence of the four training systems.

The paper's central correctness claim: host offloading, selective
offloading, parameter forwarding, image splitting, and (modulo the epsilon
approximation) the deferred optimizer update all leave training results
unchanged. These tests train the same scene with every system and compare
final parameters.
"""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=250,
            width=36,
            height=28,
            num_train_cameras=6,
            num_test_cameras=2,
            altitude=12.0,
            seed=11,
        )
    )


def run_system(scene, system, steps=8, **cfg_kwargs):
    defaults = dict(
        system=system,
        scene_extent=scene.extent,
        ssim_lambda=0.2,
        mem_limit=1.0,  # disable splitting unless a test enables it
        seed=0,
    )
    defaults.update(cfg_kwargs)
    config = GSScaleConfig(**defaults)
    sys_obj = create_system(scene.initial.copy(), config)
    for i in range(steps):
        cam = scene.train_cameras[i % len(scene.train_cameras)]
        img = scene.train_images[i % len(scene.train_images)]
        sys_obj.step(cam, img)
    sys_obj.finalize()
    return sys_obj


class TestExactEquivalence:
    """Systems without the deferred approximation must match bit-for-bit
    (same math, same operation order per element)."""

    def test_baseline_matches_gpu_only(self, scene):
        a = run_system(scene, "gpu_only")
        b = run_system(scene, "baseline_offload")
        np.testing.assert_array_equal(
            a.materialized_model().params, b.materialized_model().params
        )

    def test_gsscale_no_deferred_matches_gpu_only(self, scene):
        """Selective offloading + parameter forwarding is a pure
        reordering: results identical to GPU-only."""
        a = run_system(scene, "gpu_only")
        b = run_system(scene, "gsscale_no_deferred")
        np.testing.assert_allclose(
            a.materialized_model().params,
            b.materialized_model().params,
            rtol=1e-12,
            atol=1e-14,
        )

    def test_losses_match_across_systems(self, scene):
        """Per-step losses must agree: every system renders the same
        images from the same parameter trajectory."""
        config = dict(steps=5)
        systems = {}
        for name in ("gpu_only", "baseline_offload", "gsscale_no_deferred"):
            cfg = GSScaleConfig(
                system=name, scene_extent=scene.extent, mem_limit=1.0, seed=0
            )
            s = create_system(scene.initial.copy(), cfg)
            losses = []
            for i in range(config["steps"]):
                cam = scene.train_cameras[i % len(scene.train_cameras)]
                img = scene.train_images[i % len(scene.train_images)]
                losses.append(s.step(cam, img).loss)
            systems[name] = losses
        np.testing.assert_allclose(
            systems["baseline_offload"], systems["gpu_only"], rtol=1e-12
        )
        np.testing.assert_allclose(
            systems["gsscale_no_deferred"], systems["gpu_only"], rtol=1e-10
        )


class TestDeferredEquivalence:
    def test_gsscale_matches_gpu_only_within_epsilon(self, scene):
        """Full GS-Scale differs only by the Table-3 epsilon approximation.

        Raster thresholds (alpha cutoff, integer bounding boxes) make the
        training trajectory discontinuous, so tiny restoration differences
        can occasionally amplify; the distribution of parameter deviations
        must nevertheless be overwhelmingly at float-noise level.
        """
        a = run_system(scene, "gpu_only", steps=10)
        b = run_system(scene, "gsscale", steps=10)
        pa = a.materialized_model().params
        pb = b.materialized_model().params
        diff = np.abs(pa - pb)
        scale = np.maximum(np.abs(pa), 1.0)
        rel = diff / scale
        assert np.median(rel) < 1e-10
        assert np.mean(rel > 1e-4) < 0.01  # <1% of elements deviate visibly
        assert rel.max() < 0.05

    def test_rendered_quality_identical(self, scene):
        """Table 3: rendering quality of GS-Scale == original (to ~0.01dB)."""
        from repro.metrics import psnr
        from repro.render import render

        a = run_system(scene, "gpu_only", steps=10)
        b = run_system(scene, "gsscale", steps=10)
        cam = scene.test_cameras[0]
        gt = scene.test_images[0]
        pa = psnr(render(a.materialized_model(), cam).image, gt)
        pb = psnr(render(b.materialized_model(), cam).image, gt)
        assert abs(pa - pb) < 0.05


class TestShardedEquivalence:
    def test_sharded_k1_matches_gsscale(self, scene):
        """A single shard is exactly GS-Scale: the sharded store layering
        adds no numerics of its own (acceptance bound atol<=1e-9; holds
        far tighter)."""
        a = run_system(scene, "gsscale", steps=10)
        b = run_system(scene, "sharded", steps=10, num_shards=1)
        np.testing.assert_allclose(
            a.materialized_model().params,
            b.materialized_model().params,
            rtol=0,
            atol=1e-12,
        )

    def test_sharded_k4_matches_gsscale(self, scene):
        """Spatial sharding is a pure re-indexing (Adam is row-independent,
        culling per-Gaussian): K=4 equals K=1."""
        a = run_system(scene, "gsscale", steps=10)
        b = run_system(scene, "sharded", steps=10, num_shards=4)
        np.testing.assert_allclose(
            a.materialized_model().params,
            b.materialized_model().params,
            rtol=0,
            atol=1e-12,
        )


class TestForwardingPipeline:
    def test_pending_commit_consistency(self, scene):
        """materialized_model() mid-training (with a pending gradient)
        equals GPU-only state after the same number of steps."""
        cfg_a = GSScaleConfig(system="gpu_only", scene_extent=scene.extent,
                              mem_limit=1.0, seed=0)
        cfg_b = GSScaleConfig(system="gsscale_no_deferred",
                              scene_extent=scene.extent, mem_limit=1.0, seed=0)
        a = create_system(scene.initial.copy(), cfg_a)
        b = create_system(scene.initial.copy(), cfg_b)
        for i in range(4):
            cam = scene.train_cameras[i % len(scene.train_cameras)]
            img = scene.train_images[i % len(scene.train_images)]
            a.step(cam, img)
            b.step(cam, img)
            # no finalize: b still holds a pending gradient
            np.testing.assert_allclose(
                a.materialized_model().params,
                b.materialized_model().params,
                rtol=1e-12,
                atol=1e-14,
            )

    def test_finalize_idempotent(self, scene):
        s = run_system(scene, "gsscale", steps=4)
        p1 = s.materialized_model().params.copy()
        s.finalize()
        np.testing.assert_array_equal(s.materialized_model().params, p1)


class TestMemoryBehaviour:
    def test_gsscale_uses_far_less_device_memory(self, scene):
        a = run_system(scene, "gpu_only", steps=3)
        b = run_system(scene, "gsscale", steps=3)
        assert b.memory.peak_bytes < a.memory.peak_bytes
        # resident floor: geometric block = 4 copies of 10/59
        n = scene.initial.num_gaussians
        assert b.memory.peak_bytes >= 4 * n * 10 * 4

    def test_gpu_only_ooms_where_gsscale_fits(self, scene):
        """Figure 11's OOM bars, functionally: capacity sized between the
        two systems' peaks."""
        a = run_system(scene, "gpu_only", steps=2)
        b = run_system(scene, "gsscale", steps=2)
        capacity = (a.memory.peak_bytes + b.memory.peak_bytes) // 2
        with pytest.raises(MemoryError):
            run_system(scene, "gpu_only", steps=2,
                       device_capacity_bytes=capacity)
        run_system(scene, "gsscale", steps=2, device_capacity_bytes=capacity)

    def test_transfer_volume_ratio(self, scene):
        """Selective offloading ships 49/59 of the bytes the baseline does
        per staged Gaussian."""
        a = run_system(scene, "baseline_offload", steps=4)
        b = run_system(scene, "gsscale_no_deferred", steps=4)
        # same culling -> same staged rows; byte ratio must be 49/59
        assert a.ledger.h2d_bytes > 0
        assert b.ledger.h2d_bytes / a.ledger.h2d_bytes == pytest.approx(
            49 / 59, rel=1e-9
        )

    def test_gpu_only_has_no_transfers(self, scene):
        a = run_system(scene, "gpu_only", steps=3)
        assert a.ledger.h2d_bytes == 0
        assert a.ledger.d2h_bytes == 0


class TestTraining:
    def test_loss_decreases(self, scene):
        cfg = GSScaleConfig(system="gsscale", scene_extent=scene.extent,
                            mem_limit=1.0, seed=0)
        s = create_system(scene.initial.copy(), cfg)
        first_losses, last_losses = [], []
        for epoch in range(6):
            for cam, img in zip(scene.train_cameras, scene.train_images):
                r = s.step(cam, img)
                (first_losses if epoch == 0 else last_losses).append(r.loss)
        assert np.mean(last_losses[-len(scene.train_cameras):]) < np.mean(
            first_losses
        )

    def test_unknown_system_rejected(self, scene):
        with pytest.raises(ValueError):
            GSScaleConfig(system="tpu_magic")
