"""Tests of the sharded multi-device GS-Scale system: spatial partition,
K-invariance of the training numerics, per-shard accounting and capacity,
the multiprocessing culling fan-out, checkpointing, and the trainer
integration (densification rebuilds)."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, Trainer, create_system, spatial_partition
from repro.core.checkpoint import load_checkpoint, resume_model, save_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.densify import DensifyConfig
from repro.gaussians import layout


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=250, width=36, height=28,
            num_train_cameras=6, num_test_cameras=2,
            altitude=12.0, seed=11,
        )
    )


def make(scene, system="sharded", **cfg):
    defaults = dict(
        system=system, scene_extent=scene.extent, ssim_lambda=0.2,
        mem_limit=1.0, seed=0,
    )
    defaults.update(cfg)
    return create_system(scene.initial.copy(), GSScaleConfig(**defaults))


def run(scene, system="sharded", steps=8, **cfg):
    s = make(scene, system, **cfg)
    reports = []
    for i in range(steps):
        reports.append(
            s.step(scene.train_cameras[i % 6], scene.train_images[i % 6])
        )
    s.finalize()
    return s, reports


class TestSpatialPartition:
    def test_partition_covers_everything_disjointly(self):
        means = np.random.default_rng(3).normal(size=(101, 3))
        parts = spatial_partition(means, 5)
        assert len(parts) == 5
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(101))

    def test_population_balance(self):
        means = np.random.default_rng(4).normal(size=(128, 3))
        parts = spatial_partition(means, 4)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_k1_is_identity(self):
        means = np.zeros((9, 3))
        (only,) = spatial_partition(means, 1)
        np.testing.assert_array_equal(only, np.arange(9))

    def test_spatial_coherence(self):
        """Shards are spatial blocks: each shard's extent along the first
        cut axis is smaller than the whole cloud's."""
        means = np.random.default_rng(5).normal(size=(200, 3))
        parts = spatial_partition(means, 2)
        axis = int(np.argmax(np.ptp(means, axis=0)))
        whole = np.ptp(means[:, axis])
        for p in parts:
            assert np.ptp(means[p][:, axis]) < whole

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spatial_partition(np.zeros((3, 3)), 0)


class TestKInvariance:
    # K=1 and K=4 equivalence against unsharded GS-Scale lives in
    # tests/core/test_system_equivalence.py::TestShardedEquivalence

    def test_k_values_agree(self, scene):
        models = {}
        for k in (1, 2, 3):
            s, _ = run(scene, "sharded", steps=5, num_shards=k)
            models[k] = s.materialized_model().params
        np.testing.assert_allclose(models[1], models[2], rtol=0, atol=1e-12)
        np.testing.assert_allclose(models[1], models[3], rtol=0, atol=1e-12)

    def test_step_reports_match_gsscale(self, scene):
        a = make(scene, "gsscale")
        b = make(scene, "sharded", num_shards=4)
        for i in range(4):
            ra = a.step(scene.train_cameras[i], scene.train_images[i])
            rb = b.step(scene.train_cameras[i], scene.train_images[i])
            assert rb.loss == pytest.approx(ra.loss, rel=1e-12)
            assert rb.num_visible == ra.num_visible
            np.testing.assert_array_equal(ra.valid_ids, rb.valid_ids)

    def test_ledger_totals_match_gsscale(self, scene):
        a, _ = run(scene, "gsscale", steps=5)
        b, _ = run(scene, "sharded", steps=5, num_shards=4)
        assert a.ledger.h2d_bytes == b.ledger.h2d_bytes
        assert a.ledger.d2h_bytes == b.ledger.d2h_bytes

    def test_image_splitting_matches(self, scene):
        """The distributed split search (summed per-shard counts) finds
        the same regions as the single-device search."""
        a = make(scene, "gsscale", mem_limit=1e-6, ssim_lambda=0.0)
        b = make(scene, "sharded", num_shards=3, mem_limit=1e-6,
                 ssim_lambda=0.0)
        ra = a.step(scene.train_cameras[0], scene.train_images[0])
        rb = b.step(scene.train_cameras[0], scene.train_images[0])
        assert ra.num_regions == rb.num_regions >= 2
        assert rb.loss == pytest.approx(ra.loss, rel=1e-12)


class TestMultiprocessingFanout:
    def test_workers_match_serial(self, scene):
        serial, _ = run(scene, "sharded", steps=4, num_shards=4)
        fanned, _ = run(scene, "sharded", steps=4, num_shards=4,
                        shard_workers=2)
        np.testing.assert_array_equal(
            serial.materialized_model().params,
            fanned.materialized_model().params,
        )

    def test_pool_closed_on_finalize(self, scene):
        s, _ = run(scene, "sharded", steps=2, num_shards=2, shard_workers=2)
        assert s._pool is None  # finalize() tears the pool down


class TestPerShardAccounting:
    def test_shard_reports_partition_the_scene(self, scene):
        s, _ = run(scene, "sharded", steps=3, num_shards=4)
        reports = s.shard_reports()
        assert len(reports) == 4
        assert sum(r.num_gaussians for r in reports) == s.num_gaussians
        for r in reports:
            assert r.peak_bytes > 0
            # resident floor: the shard's geometric training state
            geo_state = 4 * layout.param_bytes(
                r.num_gaussians, layout.GEOMETRIC_DIM
            )
            assert r.live_bytes == geo_state

    def test_per_shard_capacity_enforced(self, scene):
        probe, _ = run(scene, "sharded", steps=1, num_shards=2)
        worst = max(t.peak_bytes for t in probe.shard_trackers)
        ok = make(scene, "sharded", num_shards=2,
                  shard_device_capacity_bytes=worst)
        ok.step(scene.train_cameras[0], scene.train_images[0])
        with pytest.raises(MemoryError):
            doomed = make(scene, "sharded", num_shards=2,
                          shard_device_capacity_bytes=worst // 2)
            doomed.step(scene.train_cameras[0], scene.train_images[0])

    def test_sharding_shrinks_per_device_peak(self, scene):
        single, _ = run(scene, "sharded", steps=3, num_shards=1)
        multi, _ = run(scene, "sharded", steps=3, num_shards=4)
        worst_single = single.shard_trackers[0].peak_bytes
        worst_multi = max(t.peak_bytes for t in multi.shard_trackers)
        assert worst_multi < worst_single


class TestCheckpointAndTrainer:
    def test_checkpoint_roundtrip(self, tmp_path, scene):
        path = str(tmp_path / "sharded.npz")
        # control run that settles lazy state at the same point the
        # checkpoint does (save_checkpoint finalizes before serializing)
        straight = make(scene, "sharded", num_shards=3)
        for i in range(3):
            straight.step(scene.train_cameras[i], scene.train_images[i])
        straight.finalize()
        for i in range(3, 6):
            straight.step(scene.train_cameras[i], scene.train_images[i])
        straight.finalize()

        first = make(scene, "sharded", num_shards=3)
        for i in range(3):
            first.step(scene.train_cameras[i], scene.train_images[i])
        save_checkpoint(path, first)

        resumed = make(scene, "sharded", num_shards=3)
        load_checkpoint(path, resumed)
        assert resumed.iteration == 3
        for i in range(3, 6):
            resumed.step(scene.train_cameras[i], scene.train_images[i])
        resumed.finalize()
        np.testing.assert_allclose(
            resumed.materialized_model().params,
            straight.materialized_model().params,
            rtol=1e-9, atol=1e-12,
        )

    def test_checkpoint_shard_count_mismatch_rejected(self, tmp_path, scene):
        path = str(tmp_path / "k.npz")
        s = make(scene, "sharded", num_shards=2)
        s.step(scene.train_cameras[0], scene.train_images[0])
        save_checkpoint(path, s)
        other = make(scene, "sharded", num_shards=3)
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(path, other)

    def test_resume_model_reassembles_packed(self, tmp_path, scene):
        path = str(tmp_path / "m.npz")
        s, _ = run(scene, "sharded", steps=2, num_shards=3)
        save_checkpoint(path, s)
        model = resume_model(path)
        np.testing.assert_allclose(
            model.params, s.materialized_model().params, rtol=1e-12
        )

    def test_trains_end_to_end_with_densification(self, scene):
        """K=4 end-to-end through the Trainer: densification rebuilds the
        partition, accounting survives, quality is finite."""
        cfg = GSScaleConfig(
            system="sharded", num_shards=4, scene_extent=scene.extent,
            ssim_lambda=0.0, mem_limit=1.0, seed=0,
        )
        densify = DensifyConfig(
            interval=4, start_iteration=4, stop_iteration=100,
            grad_threshold=1e-9, percent_dense=0.01,
            max_gaussians=scene.initial.num_gaussians + 80,
        )
        trainer = Trainer(scene.initial.copy(), cfg, densify=densify)
        hist = trainer.train(scene.train_cameras, scene.train_images, 12)
        assert hist.num_iterations == 12
        assert len(hist.densify_reports) >= 1
        assert np.isfinite(hist.final_loss)
        assert hist.h2d_bytes > 0
        reports = trainer.system.shard_reports()
        assert sum(r.num_gaussians for r in reports) == trainer.num_gaussians
        ev = trainer.evaluate(scene.test_cameras, scene.test_images)
        assert np.isfinite(ev.psnr)

    def test_loss_decreases(self, scene):
        s = make(scene, "sharded", num_shards=4, ssim_lambda=0.0)
        first, last = [], []
        for epoch in range(5):
            for cam, img in zip(scene.train_cameras, scene.train_images):
                r = s.step(cam, img)
                (first if epoch == 0 else last).append(r.loss)
        assert np.mean(last[-6:]) < np.mean(first)
