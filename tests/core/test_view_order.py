"""Edge-case tests for ``locality_view_order`` (the out-of-core schedule)."""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.core import locality_view_order


def camera_at(position) -> Camera:
    position = np.asarray(position, dtype=np.float64)
    return Camera.look_at(position, position + np.array([0.0, 0.0, -1.0]))


class TestLocalityViewOrder:
    def test_zero_views(self):
        order = locality_view_order([])
        assert order.shape == (0,)
        assert order.dtype == np.int64

    def test_single_view(self):
        order = locality_view_order([camera_at([1.0, 2.0, 3.0])])
        assert order.tolist() == [0]

    def test_is_a_permutation(self):
        cams = [camera_at([x, 0.0, 5.0]) for x in range(7)]
        order = locality_view_order(cams)
        assert sorted(order.tolist()) == list(range(7))

    def test_all_views_in_one_cluster(self):
        """Every view touching one shard (coincident camera centers up to
        jitter): still a valid permutation, still starts at view 0."""
        rng = np.random.default_rng(0)
        cams = [
            camera_at(np.array([3.0, 3.0, 5.0]) + rng.normal(scale=1e-9, size=3))
            for _ in range(5)
        ]
        order = locality_view_order(cams)
        assert sorted(order.tolist()) == list(range(5))
        assert order[0] == 0

    def test_exactly_coincident_centers(self):
        cams = [camera_at([1.0, 1.0, 4.0]) for _ in range(4)]
        order = locality_view_order(cams)
        assert sorted(order.tolist()) == list(range(4))

    def test_deterministic_across_repeated_calls(self):
        rng = np.random.default_rng(3)
        cams = [camera_at(rng.uniform(-5, 5, size=3) + [0, 0, 10]) for _ in range(9)]
        first = locality_view_order(cams)
        for _ in range(3):
            assert np.array_equal(locality_view_order(cams), first)

    def test_two_clusters_stay_contiguous(self):
        """The schedule's point: views sharing a shard are visited
        back-to-back, so the resident set swaps once, not per view."""
        left = [camera_at([x * 0.1, 0.0, 5.0]) for x in range(4)]
        right = [camera_at([100.0 + x * 0.1, 0.0, 5.0]) for x in range(4)]
        cams = [left[0], right[0], left[1], right[1], left[2], right[2],
                left[3], right[3]]
        order = locality_view_order(cams)
        # positions of the left-cluster views (even source indices) in the
        # schedule must be one contiguous run, likewise the right cluster
        sides = np.array([i % 2 for i in order])
        switches = int(np.sum(sides[1:] != sides[:-1]))
        assert switches == 1

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_starts_at_first_view(self, n):
        rng = np.random.default_rng(n)
        cams = [camera_at(rng.uniform(-5, 5, size=3) + [0, 0, 10]) for _ in range(n)]
        assert locality_view_order(cams)[0] == 0
