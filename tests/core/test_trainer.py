"""Tests for the end-to-end Trainer (training loop + densification)."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, Trainer
from repro.densify import DensifyConfig
from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=200,
            width=32,
            height=24,
            num_train_cameras=4,
            num_test_cameras=2,
            altitude=10.0,
            seed=31,
        )
    )


def make_trainer(scene, system="gsscale", densify=None, **cfg_kwargs):
    defaults = dict(
        system=system,
        scene_extent=scene.extent,
        ssim_lambda=0.0,
        mem_limit=1.0,
        seed=0,
    )
    defaults.update(cfg_kwargs)
    return Trainer(scene.initial.copy(), GSScaleConfig(**defaults), densify=densify)


class TestTrainingLoop:
    def test_improves_psnr(self, scene):
        trainer = make_trainer(scene)
        before = trainer.evaluate(scene.test_cameras, scene.test_images)
        trainer.train(scene.train_cameras, scene.train_images, iterations=24)
        after = trainer.evaluate(scene.test_cameras, scene.test_images)
        assert after.psnr > before.psnr

    def test_history_fields(self, scene):
        trainer = make_trainer(scene)
        hist = trainer.train(scene.train_cameras, scene.train_images, iterations=6)
        assert hist.num_iterations == 6
        assert hist.peak_device_bytes > 0
        assert hist.h2d_bytes > 0
        assert hist.d2h_bytes > 0
        assert 0 < hist.mean_active_ratio <= 1.0
        assert np.isfinite(hist.final_loss)

    def test_validation(self, scene):
        trainer = make_trainer(scene)
        with pytest.raises(ValueError):
            trainer.train(scene.train_cameras, scene.train_images[:-1], 2)
        with pytest.raises(ValueError):
            trainer.train([], [], 2)

    def test_shuffle_deterministic(self, scene):
        h1 = make_trainer(scene).train(
            scene.train_cameras, scene.train_images, 8, shuffle=True
        )
        h2 = make_trainer(scene).train(
            scene.train_cameras, scene.train_images, 8, shuffle=True
        )
        np.testing.assert_allclose(
            [s.loss for s in h1.steps], [s.loss for s in h2.steps], rtol=1e-12
        )


class TestDensificationIntegration:
    def densify_cfg(self):
        return DensifyConfig(
            interval=4,
            start_iteration=4,
            stop_iteration=100,
            grad_threshold=1e-9,  # aggressive: densify everything seen
            percent_dense=0.01,
            max_gaussians=400,
        )

    def test_model_grows(self, scene):
        trainer = make_trainer(scene, densify=self.densify_cfg())
        n0 = trainer.num_gaussians
        hist = trainer.train(scene.train_cameras, scene.train_images, 9)
        assert trainer.num_gaussians > n0
        assert len(hist.densify_reports) >= 1
        assert hist.densify_reports[0].num_after > hist.densify_reports[0].num_before

    def test_training_continues_after_densify(self, scene):
        trainer = make_trainer(scene, densify=self.densify_cfg())
        hist = trainer.train(scene.train_cameras, scene.train_images, 12)
        assert hist.num_iterations == 12
        assert np.isfinite(hist.final_loss)
        # quality should not be destroyed by the rebuild
        ev = trainer.evaluate(scene.test_cameras, scene.test_images)
        assert np.isfinite(ev.psnr)

    def test_densify_respects_cap(self, scene):
        cfg = self.densify_cfg()
        cfg.max_gaussians = scene.initial.num_gaussians  # no growth budget
        trainer = make_trainer(scene, densify=cfg)
        trainer.train(scene.train_cameras, scene.train_images, 9)
        assert trainer.num_gaussians <= cfg.max_gaussians

    def test_all_systems_survive_densification(self, scene):
        for system in ("gpu_only", "baseline_offload", "gsscale_no_deferred",
                       "gsscale"):
            trainer = make_trainer(scene, system=system, densify=self.densify_cfg())
            hist = trainer.train(scene.train_cameras, scene.train_images, 9)
            assert hist.num_iterations == 9, system

    def test_peak_memory_preserved_across_rebuild(self, scene):
        trainer = make_trainer(scene, densify=self.densify_cfg())
        hist = trainer.train(scene.train_cameras, scene.train_images, 9)
        # peak must be at least the post-densify resident footprint
        assert hist.peak_device_bytes >= trainer.system.memory.peak_bytes

    def test_transfer_ledger_preserved_across_rebuild(self, scene):
        """Densification rebuilds the system; cumulative PCIe traffic must
        keep counting across the swap."""
        with_densify = make_trainer(scene, densify=self.densify_cfg())
        hist = with_densify.train(scene.train_cameras, scene.train_images, 9)
        assert len(hist.densify_reports) >= 1
        # every one of the 9 steps staged at least one Gaussian row
        from repro.gaussians import layout

        min_bytes = 9 * layout.NON_GEOMETRIC_DIM * 4
        assert hist.h2d_bytes >= min_bytes
        # and strictly more than the post-rebuild segment alone recorded
        steps_after_last_rebuild = 9 - hist.densify_reports[-1].iteration
        assert hist.h2d_bytes > steps_after_last_rebuild * min_bytes / 9


class TestEmptyStepSSIM:
    """Regression: an empty-visibility step must not report ssim=1.0 —
    that inflated averaged quality metrics. It reports NaN, and the
    history aggregation skips it."""

    def away_camera(self, scene):
        from repro.cameras.camera import Camera

        # looking straight away from the scene: nothing in the frustum
        return Camera.look_at(
            position=(0.0, 0.0, 1000.0), target=(0.0, 0.0, 2000.0),
            width=scene.train_cameras[0].width,
            height=scene.train_cameras[0].height,
        )

    @pytest.mark.parametrize("system", ["gsscale", "sharded"])
    def test_empty_step_reports_nan_ssim(self, scene, system):
        from repro.core import GSScaleConfig, create_system

        cfg = GSScaleConfig(system=system, scene_extent=scene.extent,
                            ssim_lambda=0.2, mem_limit=1.0, seed=0)
        s = create_system(scene.initial.copy(), cfg)
        cam = self.away_camera(scene)
        report = s.step(cam, np.zeros((cam.height, cam.width, 3)))
        assert report.num_visible == 0
        assert np.isnan(report.ssim)
        assert report.loss == 0.0

    def test_history_mean_ssim_skips_empty_steps(self, scene):
        trainer = make_trainer(scene, ssim_lambda=0.2)
        cam = self.away_camera(scene)
        cameras = list(scene.train_cameras) + [cam]
        images = list(scene.train_images) + [
            np.zeros((cam.height, cam.width, 3))
        ]
        hist = trainer.train(cameras, images, iterations=len(cameras))
        ssims = np.array([s.ssim for s in hist.steps])
        assert np.isnan(ssims).sum() == 1
        assert np.isfinite(hist.mean_ssim)
        assert hist.mean_ssim == pytest.approx(
            float(np.mean(ssims[~np.isnan(ssims)]))
        )
        # the fake-1.0 bug would have pulled the average up
        assert hist.mean_ssim < 1.0


class TestEvaluate:
    def test_eval_result_fields(self, scene):
        trainer = make_trainer(scene)
        ev = trainer.evaluate(scene.test_cameras, scene.test_images)
        assert ev.num_views == 2
        assert np.isfinite(ev.psnr)
        assert -1 <= ev.ssim <= 1
        assert ev.lpips_proxy >= 0

    def test_oracle_scores_best(self, scene):
        """Evaluating the oracle against its own renders is near-perfect."""
        cfg = GSScaleConfig(system="gpu_only", scene_extent=scene.extent,
                            mem_limit=1.0, seed=0)
        trainer = Trainer(scene.oracle.copy(), cfg)
        ev = trainer.evaluate(scene.test_cameras, scene.test_images)
        assert ev.psnr > 40
        assert ev.lpips_proxy < 1e-3
