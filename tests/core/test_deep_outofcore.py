"""Acceptance tests for the deep out-of-core tier: compressed pages,
depth-D prefetch, and write-behind spilling.

The contract stacked on top of the base out-of-core suites:

* the ``lossless`` page codec is pure placement — the K=4 out-of-core
  trajectory stays bit-identical to the in-memory sharded system;
* the ``float16`` codec is tolerance-bounded against the raw trajectory
  and meters a ~2x decoded/on-disk ratio on the ledger's disk channel
  (2 bytes/value plus a 2-byte per-column scale header);
* a depth-2 staging queue on an alternating-cluster schedule reaches a
  strictly higher staging hit-rate (and strictly less page traffic)
  than the depth-1 double buffer, without changing a single parameter
  bit;
* write-behind spilling drives the admit path's synchronous spill bytes
  to zero while the synchronous run pays the full page-out traffic —
  again bit-identically;
* a synthetic model several times the host budget trains and serves
  under enforced byte budgets.
"""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.core import GSScaleConfig, Trainer, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import GaussianModel, layout
from repro.render import render
from repro.serve.store import PagedServingStore

CLUSTER_CENTERS = np.array(
    [[-6.0, -6.0, 0.0], [6.0, -6.0, 0.0], [-6.0, 6.0, 0.0], [6.0, 6.0, 0.0]]
)


@pytest.fixture(scope="module")
def clustered():
    """Four well-separated clusters, one narrow camera per cluster (the
    same regime as the async-prefetch suite: each view culls to one
    spatial shard)."""
    rng = np.random.default_rng(3)
    per = 60
    means = np.concatenate(
        [c + rng.normal(scale=0.4, size=(per, 3)) for c in CLUSTER_CENTERS]
    )
    n = means.shape[0]
    log_scales = np.full((n, 3), np.log(0.05))
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    opacity_logits = rng.uniform(0.5, 1.5, size=n)
    sh = rng.normal(size=(n, 16, 3)) * 0.2
    model = GaussianModel.from_attributes(
        means, log_scales, quats, opacity_logits, sh, dtype=np.float64
    )
    cameras = [
        Camera.look_at(
            c + np.array([0.0, 0.0, 5.0]), c, up=(0.0, 1.0, 0.0),
            width=24, height=18, fov_x_deg=40.0,
        )
        for c in CLUSTER_CENTERS
    ]
    # ground truth rendered from a slightly perturbed copy: gradients are
    # nonzero (the fit has somewhere to go) but small and well-conditioned,
    # so parameters stay in sane ranges as they do in any real fit — the
    # float16 parity below needs a live trajectory, not a detonating one
    sh_gt = sh + rng.normal(size=sh.shape) * 0.05
    gt_model = GaussianModel.from_attributes(
        means, log_scales, quats, opacity_logits, sh_gt, dtype=np.float64
    )
    images = [render(gt_model, cam).image for cam in cameras]
    return model, cameras, images


def make_system(model, **cfg):
    defaults = dict(
        system="outofcore", num_shards=4, resident_shards=1,
        scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
    )
    defaults.update(cfg)
    return create_system(model.copy(), GSScaleConfig(**defaults))


def run_steps(model, cameras, images, steps=8, **cfg):
    """Plain round-robin step loop (no hints); returns (system, losses)."""
    s = make_system(model, **cfg)
    losses = []
    for i in range(steps):
        losses.append(
            s.step(cameras[i % len(cameras)], images[i % len(cameras)]).loss
        )
    s.finalize()
    return s, losses


class TestLosslessBitIdentity:
    def test_matches_raw_outofcore(self, clustered):
        model, cameras, images = clustered
        raw, loss_raw = run_steps(model, cameras, images)
        loz, loss_loz = run_steps(model, cameras, images, page_codec="lossless")
        assert loss_raw == loss_loz
        np.testing.assert_array_equal(
            raw.materialized_model().params, loz.materialized_model().params
        )

    def test_matches_in_memory_sharded(self, clustered):
        """The headline parity: K=4 out-of-core through the compressed
        disk tier == the K=4 in-memory sharded system, bit for bit."""
        model, cameras, images = clustered
        mem = create_system(
            model.copy(),
            GSScaleConfig(
                system="sharded", num_shards=4, scene_extent=8.0,
                ssim_lambda=0.0, mem_limit=1.0, seed=0,
            ),
        )
        loss_mem = []
        for i in range(8):
            loss_mem.append(
                mem.step(cameras[i % 4], images[i % 4]).loss
            )
        mem.finalize()
        loz, loss_loz = run_steps(model, cameras, images, page_codec="lossless")
        assert loss_mem == loss_loz
        np.testing.assert_array_equal(
            mem.materialized_model().params, loz.materialized_model().params
        )

    def test_disk_channel_meters_encoded_bytes(self, clustered):
        """The ledger's disk channel reports what actually crossed the
        disk interface, decoupled from the fp32-equivalent accounting
        the page channel keeps for the budget contracts."""
        model, cameras, images = clustered
        raw, _ = run_steps(model, cameras, images)
        loz, _ = run_steps(model, cameras, images, page_codec="lossless")
        # raw: both sides of the channel agree
        assert raw.ledger.page_in_disk_bytes == raw.ledger.page_in_bytes
        assert raw.ledger.page_out_disk_bytes == raw.ledger.page_out_bytes
        # lossless: same accounting traffic, different encoded traffic
        assert loz.ledger.page_in_bytes == raw.ledger.page_in_bytes
        assert loz.ledger.page_in_disk_bytes > 0
        assert loz.ledger.page_in_disk_bytes != loz.ledger.page_in_bytes


class TestFloat16:
    def test_trajectory_tolerance_parity(self, clustered):
        """Quantizing spilled pages to half precision perturbs the
        trajectory only within half-precision resolution."""
        model, cameras, images = clustered
        raw, loss_raw = run_steps(model, cameras, images)
        f16, loss_f16 = run_steps(model, cameras, images, page_codec="float16")
        # rtol covers the per-spill half-precision resolution (~5e-4
        # compounded over 8 swap cycles); atol absorbs the handful of
        # most-sensitive logits where that noise feeds back through the
        # optimizer a little harder
        np.testing.assert_allclose(
            f16.materialized_model().params,
            raw.materialized_model().params,
            rtol=5e-3, atol=5e-2,
        )
        np.testing.assert_allclose(loss_f16, loss_raw, rtol=1e-2)

    def test_disk_ratio_is_nearly_two(self, clustered):
        """2 encoded bytes per 4 accounted bytes, on every single page —
        minus the 2-byte per-column scale header, so the realized ratio
        sits just under 2x but comfortably past the 1.5x bandwidth gate."""
        model, cameras, images = clustered
        f16, _ = run_steps(model, cameras, images, page_codec="float16")
        ledger = f16.ledger
        assert ledger.page_in_count > 0
        assert 1.5 < ledger.page_in_bytes / ledger.page_in_disk_bytes <= 2.0
        assert 1.5 < ledger.page_out_bytes / ledger.page_out_disk_bytes <= 2.0


class TestDepthD:
    def run_depth(self, clustered, depth, steps=8):
        """Alternate between two clusters under a budget of 2 resident
        shards — the D=1 structural miss: the next view's shard is still
        resident when the staging worker looks (nothing to snapshot),
        then gets evicted at end of step, so depth 1 pays a synchronous
        page-in every single step. Depth 2's keep-set retains it."""
        model, cameras, images = clustered
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=2,
            scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
            async_prefetch=True, prefetch_depth=depth,
        )
        t = Trainer(model.copy(), cfg)
        t.train(cameras[:2], images[:2], steps)
        return t.system

    def test_depth2_strictly_beats_depth1(self, clustered):
        d1 = self.run_depth(clustered, 1)
        d2 = self.run_depth(clustered, 2)
        # same math, different schedule
        np.testing.assert_array_equal(
            d1.materialized_model().params, d2.materialized_model().params
        )
        # strictly higher staging hit-rate ...
        rate1 = d1.prefetch_hits / max(d1.prefetch_hits + d1.prefetch_misses, 1)
        rate2 = d2.prefetch_hits / max(d2.prefetch_hits + d2.prefetch_misses, 1)
        assert rate2 > rate1
        assert d2.prefetch_misses == 0
        # ... and strictly less page traffic: retention beats re-reading
        assert d2.ledger.page_in_count < d1.ledger.page_in_count

    def test_depth_reported(self, clustered):
        d2 = self.run_depth(clustered, 2, steps=2)
        assert d2.prefetch_depth == 0  # prefetcher closed by finalize
        model, cameras, images = clustered
        live = make_system(
            model, resident_shards=2, async_prefetch=True, prefetch_depth=3
        )
        assert live.prefetch_depth == 3
        live.finalize()

    def test_staging_stays_inside_budget(self, clustered):
        """The depth-D queue's host bytes never exceed the explicit
        staging budget: depth x resident budget x worst shard state."""
        model, cameras, images = clustered
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
            async_prefetch=True, prefetch_depth=3,
        )
        t = Trainer(model.copy(), cfg)
        t.train(cameras, images, 12)
        s = t.system
        per_shard = max(
            3 * layout.param_bytes(r.size, layout.NON_GEOMETRIC_DIM)
            for r in s.shard_rows
        )
        assert 0 < s.prefetch_staged_peak_bytes
        assert s.prefetch_staged_peak_bytes <= 3 * s.resident_set.budget * per_shard

    def test_config_validation(self):
        with pytest.raises(ValueError, match="prefetch_depth"):
            GSScaleConfig(system="outofcore", prefetch_depth=0)
        with pytest.raises(ValueError, match="async_prefetch"):
            GSScaleConfig(system="outofcore", prefetch_depth=2)
        with pytest.raises(ValueError, match="unknown page codec"):
            GSScaleConfig(system="outofcore", page_codec="zstd")


class TestWriteBehind:
    def test_admit_path_pays_zero_sync_bytes(self, clustered):
        model, cameras, images = clustered
        sync, _ = run_steps(model, cameras, images)
        wb, _ = run_steps(model, cameras, images, write_behind=True)
        # synchronous runs pay every page-out on the training thread;
        # write-behind runs pay none of them there
        assert sync.sync_spill_bytes > 0
        assert wb.sync_spill_bytes == 0
        assert wb.write_behind_jobs > 0
        assert sync.write_behind_jobs == 0

    def test_bit_identical_and_same_ledger(self, clustered):
        model, cameras, images = clustered
        sync, loss_sync = run_steps(model, cameras, images)
        wb, loss_wb = run_steps(model, cameras, images, write_behind=True)
        assert loss_sync == loss_wb
        np.testing.assert_array_equal(
            sync.materialized_model().params, wb.materialized_model().params
        )
        for field in (
            "page_in_bytes", "page_out_bytes", "page_in_count",
            "page_out_count", "page_in_disk_bytes", "page_out_disk_bytes",
            "h2d_bytes", "d2h_bytes",
        ):
            assert getattr(sync.ledger, field) == getattr(wb.ledger, field)

    def test_full_stack_combo(self, clustered):
        """Everything at once — lossless pages, depth-3 staging queue,
        write-behind — still bit-identical to the plain synchronous
        raw-page run, with a zero-cost admit path."""
        model, cameras, images = clustered
        sync, loss_sync = run_steps(model, cameras, images)
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0, seed=0,
            async_prefetch=True, prefetch_depth=3, write_behind=True,
            page_codec="lossless",
        )
        combo = create_system(model.copy(), cfg)
        loss_combo = []
        for i in range(8):
            loss_combo.append(
                combo.step(cameras[i % 4], images[i % 4]).loss
            )
        combo.finalize()
        assert loss_sync == loss_combo
        np.testing.assert_array_equal(
            sync.materialized_model().params,
            combo.materialized_model().params,
        )
        assert combo.sync_spill_bytes == 0


class TestFarBeyondHostBudget:
    """The capability gate: a synthetic model whose pageable training
    state is ~10x the host working set trains and serves under enforced
    byte budgets."""

    @pytest.fixture(scope="class")
    def scene(self):
        return build_scene(
            SyntheticSceneConfig(
                num_points=400, width=36, height=28,
                num_train_cameras=6, num_test_cameras=1,
                altitude=12.0, seed=11,
            )
        )

    def test_trains_with_tenth_of_state_resident(self, scene):
        cfg = GSScaleConfig(
            system="outofcore", num_shards=10, resident_shards=1,
            scene_extent=scene.extent, ssim_lambda=0.0, mem_limit=1.0,
            seed=0, async_prefetch=True, write_behind=True,
            page_codec="float16",
        )
        t = Trainer(scene.initial.copy(), cfg)
        hist = t.train(scene.train_cameras, scene.train_images, 12,
                       view_order="locality")
        assert np.isfinite(hist.final_loss)
        s = t.system
        total_pageable = sum(
            3 * layout.param_bytes(r.size, layout.NON_GEOMETRIC_DIM)
            for r in s.shard_rows
        )
        # the tracked host working set stays an order of magnitude below
        # the full pageable state (one shard + the defer counters)
        assert total_pageable / s.host_memory.peak_bytes >= 6.0
        assert s.sync_spill_bytes == 0  # write-behind admit path

    def test_serves_with_tenth_of_nongeo_resident(self, scene, tmp_path):
        model = scene.initial
        n = model.params.shape[0]
        geo_bytes = layout.param_bytes(n, layout.GEOMETRIC_DIM)
        nongeo_bytes = layout.param_bytes(n, layout.NON_GEOMETRIC_DIM)
        budget = geo_bytes + nongeo_bytes // 10
        store = PagedServingStore.from_model(
            model, host_budget_bytes=budget, num_shards=16,
            page_dir=str(tmp_path / "pages"), codec="float16",
        )
        try:
            # the budget is enforced by a capacity tracker: any gather
            # that overshot would raise MemoryError inside page_in
            rng = np.random.default_rng(0)
            for _ in range(6):
                ids = np.sort(rng.choice(n, size=64, replace=False))
                got = store.gather(ids)
                np.testing.assert_allclose(
                    got[:, layout.NON_GEOMETRIC_SLICE],
                    model.params[ids][:, layout.NON_GEOMETRIC_SLICE],
                    rtol=1e-3, atol=1e-6,
                )
                np.testing.assert_array_equal(
                    got[:, layout.GEOMETRIC_SLICE],
                    model.params[ids][:, layout.GEOMETRIC_SLICE],
                )
            assert store.host_memory.peak_bytes <= budget
            assert store.ledger.page_in_count > 0
            # f16 serve pages meter the same ~2x on the disk channel
            # (just under: 2 header bytes per column per page)
            ratio = (
                store.ledger.page_in_bytes / store.ledger.page_in_disk_bytes
            )
            assert 1.5 < ratio <= 2.0
        finally:
            store.close()
