"""Seeded randomized protocol fuzz: stores vs an in-memory oracle.

Drives random interleavings of the store protocol — ``stage``/``unstage``,
``return_grads``, ``commit``, ``materialize``, ``set_lr``, ``flush``, and
(for the disk tier) ``spill``/``page_in`` at arbitrary points — for a few
hundred operations against an oracle holding the same state in plain
memory, asserting parameter arrays and optimizer state stay bit-identical
throughout. Placement and paging must be invisible to the math no matter
how the operations interleave.
"""

import numpy as np
import pytest

from repro.core.stores import (
    DeviceStore,
    DiskStore,
    HostStore,
    HybridStore,
    ResidentSet,
    ShardedStore,
)
from repro.core.systems import TransferLedger
from repro.gaussians import layout
from repro.optim.base import AdamConfig
from repro.sim.memory import MemoryTracker

N = 30
ADAM = AdamConfig(lr=5e-3)


def _params(seed):
    return np.random.default_rng(seed).normal(size=(N, layout.PARAM_DIM))


def _random_ids(rng, n=N):
    size = int(rng.integers(0, n + 1))
    return np.sort(rng.choice(n, size=size, replace=False))


class _ProtocolFuzzer:
    """Applies one random-op stream to a pair of protocol-equal stores."""

    def __init__(self, seed, subject, oracle, disk_ops=False):
        self.rng = np.random.default_rng(seed)
        self.subject = subject
        self.oracle = oracle
        self.ops = [
            self.op_step, self.op_step, self.op_step,  # weighted: common
            self.op_materialize, self.op_set_lr, self.op_flush,
        ]
        if disk_ops:
            self.ops += [self.op_spill, self.op_page_in]

    def both(self, fn):
        fn(self.subject)
        fn(self.oracle)

    def op_step(self):
        """One full training-step protocol round with shared gradients."""
        ids = _random_ids(self.rng)
        grads = self.rng.normal(size=(ids.size, layout.PARAM_DIM))
        returned = bool(self.rng.integers(0, 2))
        for store in (self.subject, self.oracle):
            store.stage(ids)
            store.unstage(ids, returned=returned)
            store.commit()
            store.return_grads(ids, grads)

    def op_materialize(self):
        ids = _random_ids(self.rng)
        np.testing.assert_array_equal(
            self.subject.materialize(ids), self.oracle.materialize(ids)
        )

    def op_set_lr(self):
        # lr changes at settled step boundaries: a forwarding store
        # commits pending gradients with the *commit-time* lr, so changing
        # rates under a pending batch is outside the protocol contract
        # (the systems only ever re-rate device-resident columns)
        self.both(lambda s: s.flush())
        if hasattr(self.subject, "spill") and self.rng.integers(0, 2):
            self.subject.spill()  # exercise the spilled lr-stash path
        lr = np.exp(self.rng.normal(size=layout.PARAM_DIM) - 5.0)
        self.both(lambda s: s.set_lr(lr))

    def op_flush(self):
        self.both(lambda s: s.flush())

    def op_spill(self):
        self.subject.spill()  # oracle has no disk tier: no-op there

    def op_page_in(self):
        self.subject.page_in()

    def run(self, rounds):
        for i in range(rounds):
            self.rng.choice(self.ops)()
            if i % 10 == 0:
                self.op_materialize()
        self.both(lambda s: s.flush())
        np.testing.assert_array_equal(
            self.subject.materialize(), self.oracle.materialize()
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("deferred", [False, True], ids=["dense", "deferred"])
@pytest.mark.parametrize("codec", ["raw", "lossless"])
def test_disk_store_matches_host_store(tmp_path, seed, deferred, codec):
    """DiskStore under random spill/page-in interleavings is bit-identical
    to a HostStore with the same flags: the disk tier is pure placement —
    including through the lossless page codec (shuffle+zlib must round-trip
    every spill bit-exactly)."""
    tracker, ledger = MemoryTracker(), TransferLedger()
    disk = DiskStore(
        _params(seed), layout.ALL_BLOCK, ADAM, tracker, ledger,
        spill_path=str(tmp_path / f"fuzz{seed}"),
        resident_set=ResidentSet(1),
        forwarding=True, deferred=deferred, codec=codec,
    )
    host = HostStore(
        _params(seed), layout.ALL_BLOCK, ADAM, MemoryTracker(),
        TransferLedger(), forwarding=True, deferred=deferred,
    )
    _ProtocolFuzzer(seed, disk, host, disk_ops=True).run(rounds=120)
    # optimizer state (not just parameters) must agree bit-for-bit
    a, b = disk.state_dict(), host.state_dict()
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(np.asarray(a[key]), b[key], err_msg=key)


@pytest.mark.parametrize("seed", [3, 4])
def test_sharded_hybrid_matches_device(seed):
    """A sharded composition of hybrid (device+forwarding-host) stores is
    bit-identical to one flat DeviceStore under random interleavings."""
    p = _params(seed)
    rows = [np.arange(k, N, 4) for k in range(4)]
    stores = []
    parent_tracker, parent_ledger = MemoryTracker(), TransferLedger()
    for r in rows:
        tracker = MemoryTracker(parent=parent_tracker)
        ledger = TransferLedger(parent=parent_ledger)
        geo = DeviceStore(
            p[r][:, layout.GEOMETRIC_SLICE], layout.GEOMETRIC_BLOCK, ADAM,
            tracker, label="geo",
        )
        host = HostStore(
            p[r][:, layout.NON_GEOMETRIC_SLICE], layout.NON_GEOMETRIC_BLOCK,
            ADAM, tracker, ledger, forwarding=True,
        )
        stores.append(HybridStore([geo, host]))
    sharded = ShardedStore(rows, stores)
    oracle = DeviceStore(p, layout.ALL_BLOCK, ADAM, MemoryTracker())
    _ProtocolFuzzer(seed, sharded, oracle).run(rounds=100)


@pytest.mark.parametrize("seed", [5])
def test_float16_disk_store_mirror_pair(tmp_path, seed):
    """Two float16-codec DiskStores driven by the same op stream stay
    bit-identical to *each other*: the lossy codec is deterministic, and
    idempotent across repeated spill/page-in cycles (a page spilled twice
    without intervening math writes the same bytes both times)."""
    stores = []
    for run in range(2):
        disk = DiskStore(
            _params(seed), layout.ALL_BLOCK, ADAM, MemoryTracker(),
            TransferLedger(), spill_path=str(tmp_path / f"f16_{run}"),
            forwarding=True, deferred=True, codec="float16",
        )
        rng = np.random.default_rng(seed + 100)
        for step in range(40):
            ids = _random_ids(rng)
            grads = rng.normal(size=(ids.size, layout.PARAM_DIM))
            disk.stage(ids)
            disk.unstage(ids)
            disk.commit()
            disk.return_grads(ids, grads)
            if step % 3 == 2:
                disk.spill()
        disk.flush()
        stores.append(disk)
    a, b = (s.state_dict() for s in stores)
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(np.asarray(a[key]), np.asarray(b[key]),
                                      err_msg=key)
    # idempotence on disk: spill -> page_in -> spill with no math between
    # reproduces the page file byte-for-byte
    disk = stores[0]
    disk.spill()
    first = {f: open(p, "rb").read() for f, p in disk._page_files.items()}
    disk.page_in()
    disk.spill()
    second = {f: open(p, "rb").read() for f, p in disk._page_files.items()}
    assert first == second


@pytest.mark.parametrize("seed", [7])
def test_fuzz_is_deterministic(tmp_path, seed):
    """Same seed, same stream: the fuzzer itself is reproducible, so any
    failure it ever finds can be replayed."""
    finals = []
    for run in range(2):
        tracker, ledger = MemoryTracker(), TransferLedger()
        disk = DiskStore(
            _params(seed), layout.ALL_BLOCK, ADAM, tracker, ledger,
            spill_path=str(tmp_path / f"det{run}"),
            forwarding=True, deferred=True,
        )
        host = HostStore(
            _params(seed), layout.ALL_BLOCK, ADAM, MemoryTracker(),
            TransferLedger(), forwarding=True, deferred=True,
        )
        _ProtocolFuzzer(seed, disk, host, disk_ops=True).run(rounds=60)
        finals.append(disk.materialize())
    np.testing.assert_array_equal(finals[0], finals[1])
