"""Tests for balance-aware image splitting (Section 4.4)."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system, find_balanced_split
from repro.core.splitting import SPLIT_SEARCH_STEPS
from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=300,
            width=48,
            height=32,
            num_train_cameras=4,
            num_test_cameras=1,
            altitude=10.0,
            seed=21,
        )
    )


def geo(scene):
    m = scene.initial
    return m.means, m.log_scales, m.quats


class TestFindBalancedSplit:
    def test_balance_near_half(self, scene):
        cam = scene.train_cameras[0]
        split = find_balanced_split(*geo(scene), cam)
        # paper reports 0.551 : 0.449 average balance with a 5-step search
        assert 0.35 <= split.balance <= 0.65

    def test_beats_or_matches_naive_midpoint_on_skewed_scene(self):
        """A scene with all mass on the left: the search must move the
        split left of the midpoint."""
        rng = np.random.default_rng(0)
        from repro.cameras import Camera
        from repro.gaussians import GaussianModel

        pts = rng.uniform([-10, -3, 0], [-2, 3, 1], size=(300, 3))
        colors = rng.uniform(0, 1, (300, 3))
        model = GaussianModel.from_point_cloud(pts, colors)
        cam = Camera.look_at([0, 0, 18.0], [0, 0.1, 0], width=64, height=48,
                             fov_x_deg=75.0)
        split = find_balanced_split(model.means, model.log_scales, model.quats, cam)
        assert split.split_x < 32  # moved toward the populated side
        assert 0.3 <= split.balance <= 0.7

    def test_regions_cover_image(self, scene):
        cam = scene.train_cameras[1]
        split = find_balanced_split(*geo(scene), cam)
        (left, x0), (right, x1) = split.regions
        assert x0 == 0
        assert x1 == split.split_x
        assert left.width + right.width == cam.width
        assert left.height == right.height == cam.height

    def test_search_step_count_default(self):
        assert SPLIT_SEARCH_STEPS == 5


class TestSplitTrainingEquivalence:
    def test_split_single_step_exact(self, scene):
        """Section 4.4's mathematical-equivalence claim: from identical
        state, one split step produces the same loss, the same gradients,
        and the same updated parameters as an unsplit step (L1 loss —
        pixel losses are additive across the split)."""
        base = dict(
            system="gsscale_no_deferred",
            scene_extent=scene.extent,
            ssim_lambda=0.0,  # SSIM windows straddle the boundary
            seed=0,
        )
        whole = create_system(
            scene.initial.copy(), GSScaleConfig(mem_limit=1.0, **base)
        )
        split = create_system(
            scene.initial.copy(), GSScaleConfig(mem_limit=1e-6, **base)
        )
        for i in range(3):  # several distinct views, always from lockstep
            cam = scene.train_cameras[i]
            img = scene.train_images[i]
            rw = whole.step(cam, img)
            rs = split.step(cam, img)
            assert rw.num_regions == 1
            assert rs.num_regions >= 2
            assert rs.loss == pytest.approx(rw.loss, rel=1e-12)
            np.testing.assert_array_equal(rw.valid_ids, rs.valid_ids)
            # aggregated gradients pending on the host must agree
            np.testing.assert_allclose(
                whole._pending_grads, split._pending_grads,
                rtol=1e-9, atol=1e-15,
            )
            # re-synchronize state so every step starts from bit-identical
            # inputs (float associativity across region sums would
            # otherwise compound through raster thresholds)
            split.device_geo[...] = whole.device_geo
            split.geo_optimizer.m[...] = whole.geo_optimizer.m
            split.geo_optimizer.v[...] = whole.geo_optimizer.v
            split._pending_grads = whole._pending_grads.copy()

    def test_split_multi_step_statistically_identical(self, scene):
        """Free-running split vs unsplit training: trajectories may drift
        at float-noise scale (threshold amplification), but parameters
        must remain overwhelmingly identical."""
        base = dict(
            system="gsscale_no_deferred",
            scene_extent=scene.extent,
            ssim_lambda=0.0,
            seed=0,
        )
        whole = create_system(
            scene.initial.copy(), GSScaleConfig(mem_limit=1.0, **base)
        )
        split = create_system(
            scene.initial.copy(), GSScaleConfig(mem_limit=1e-6, **base)
        )
        for i in range(6):
            cam = scene.train_cameras[i % len(scene.train_cameras)]
            img = scene.train_images[i % len(scene.train_images)]
            rw = whole.step(cam, img)
            rs = split.step(cam, img)
            assert rs.loss == pytest.approx(rw.loss, rel=1e-6)
        whole.finalize()
        split.finalize()
        pa = whole.materialized_model().params
        pb = split.materialized_model().params
        rel = np.abs(pa - pb) / np.maximum(np.abs(pa), 1.0)
        assert np.median(rel) < 1e-10
        assert np.mean(rel > 1e-4) < 0.01
        assert rel.max() < 0.05

    def test_split_reduces_peak_staging(self, scene):
        """Splitting must lower the peak staged footprint (Challenge 3)."""
        base = dict(
            system="gsscale",
            scene_extent=scene.extent,
            ssim_lambda=0.0,
            seed=0,
        )
        whole = create_system(
            scene.initial.copy(), GSScaleConfig(mem_limit=1.0, **base)
        )
        split = create_system(
            scene.initial.copy(), GSScaleConfig(mem_limit=1e-6, **base)
        )
        cam = scene.train_cameras[0]
        img = scene.train_images[0]
        whole.step(cam, img)
        split.step(cam, img)
        # compare peak staged+activation above the common resident floor
        resident = 4 * scene.initial.num_gaussians * 10 * 4
        assert (split.memory.peak_bytes - resident) < (
            whole.memory.peak_bytes - resident
        )

    def test_split_report_counts_union(self, scene):
        cfg = GSScaleConfig(
            system="gsscale", scene_extent=scene.extent,
            ssim_lambda=0.0, mem_limit=1e-6, seed=0,
        )
        s = create_system(scene.initial.copy(), cfg)
        cam = scene.train_cameras[0]
        report = s.step(cam, scene.train_images[0])
        assert report.num_regions == 2
        # union of region ids can't exceed the whole-view visible count
        whole_cull = s._cull(cam)
        assert report.num_visible <= whole_cull.num_visible + 1
