"""Tests for training-schedule features: SH ramp and opacity reset."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, Trainer, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.densify import DensificationController, DensifyConfig
from repro.gaussians import GaussianModel, layout


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=150, width=28, height=20,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=55,
        )
    )


class TestShDegreeRamp:
    def test_schedule_values(self):
        cfg = GSScaleConfig(sh_degree=3, sh_degree_interval=10)
        assert cfg.sh_degree_at(1) == 0
        assert cfg.sh_degree_at(10) == 0
        assert cfg.sh_degree_at(11) == 1
        assert cfg.sh_degree_at(31) == 3
        assert cfg.sh_degree_at(1000) == 3  # capped at sh_degree

    def test_disabled_by_default(self):
        cfg = GSScaleConfig(sh_degree=2)
        assert cfg.sh_degree_at(1) == 2

    def test_ramped_training_runs(self, scene):
        cfg = GSScaleConfig(
            system="gsscale", scene_extent=scene.extent, ssim_lambda=0.0,
            sh_degree=3, sh_degree_interval=2, mem_limit=1.0, seed=0,
        )
        s = create_system(scene.initial.copy(), cfg)
        for i in range(6):
            r = s.step(scene.train_cameras[i % 3], scene.train_images[i % 3])
            assert np.isfinite(r.loss)

    def test_early_iterations_have_no_high_band_grads(self, scene):
        """With degree 0 active, SH bands 1-3 receive zero gradient."""
        cfg = GSScaleConfig(
            system="gpu_only", scene_extent=scene.extent, ssim_lambda=0.0,
            sh_degree=3, sh_degree_interval=100, mem_limit=1.0, seed=0,
        )
        s = create_system(scene.initial.copy(), cfg)
        before = s.params.copy()
        s.step(scene.train_cameras[0], scene.train_images[0])
        sh_cols = s.params[:, layout.SH_SLICE].reshape(-1, 16, 3)
        before_sh = before[:, layout.SH_SLICE].reshape(-1, 16, 3)
        # DC moved, higher bands untouched
        assert np.any(sh_cols[:, 0, :] != before_sh[:, 0, :])
        np.testing.assert_array_equal(sh_cols[:, 1:, :], before_sh[:, 1:, :])


class TestOpacityReset:
    def make_controller(self, n, interval=5, value=0.01):
        return DensificationController(
            DensifyConfig(
                interval=1000, start_iteration=1000, stop_iteration=2000,
                opacity_reset_interval=interval, opacity_reset_value=value,
            ),
            n,
        )

    def test_reset_clamps_high_opacities(self):
        params = np.zeros((4, layout.PARAM_DIM))
        params[:, 10] = [3.0, -6.0, 0.5, 2.0]  # logits
        model = GaussianModel(params)
        c = self.make_controller(4)
        clamped = c.reset_opacity(model)
        assert clamped == 3  # the -6.0 logit is already below the ceiling
        assert np.all(model.opacities <= 0.01 + 1e-9)

    def test_low_opacities_untouched(self):
        params = np.zeros((2, layout.PARAM_DIM))
        params[:, 10] = -8.0
        model = GaussianModel(params)
        c = self.make_controller(2)
        assert c.reset_opacity(model) == 0
        np.testing.assert_array_equal(model.opacity_logits[:, 0], -8.0)

    def test_schedule(self):
        c = self.make_controller(2, interval=7)
        fired = [i for i in range(1, 30) if c.should_reset_opacity(i)]
        assert fired == [7, 14, 21, 28]
        c2 = DensificationController(DensifyConfig(), 2)
        assert not any(c2.should_reset_opacity(i) for i in range(1, 30))

    def test_trainer_integration_all_systems(self, scene):
        densify = DensifyConfig(
            interval=1000, start_iteration=1000, stop_iteration=2000,
            opacity_reset_interval=4, opacity_reset_value=0.02,
        )
        for system in ("gpu_only", "gsscale"):
            trainer = Trainer(
                scene.initial.copy(),
                GSScaleConfig(
                    system=system, scene_extent=scene.extent,
                    ssim_lambda=0.0, mem_limit=1.0, seed=0,
                ),
                densify=densify,
            )
            trainer.train(scene.train_cameras, scene.train_images, 4)
            model = trainer.system.materialized_model()
            assert np.all(model.opacities <= 0.02 + 1e-9), system

    def test_training_recovers_after_reset(self, scene):
        """Opacity must be re-learnable after the clamp."""
        densify = DensifyConfig(
            interval=1000, start_iteration=1000, stop_iteration=2000,
            opacity_reset_interval=3,
        )
        trainer = Trainer(
            scene.initial.copy(),
            GSScaleConfig(
                system="gsscale", scene_extent=scene.extent,
                ssim_lambda=0.0, mem_limit=1.0, seed=0,
            ),
            densify=densify,
        )
        trainer.train(scene.train_cameras, scene.train_images, 9)
        model = trainer.system.materialized_model()
        # 2 full steps after the last reset at iteration 9 -> some recovery
        assert np.isfinite(model.opacities).all()
