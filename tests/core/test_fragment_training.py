"""End-to-end training on the fragment raster engine: the sharded and
out-of-core systems render per-shard and composite fragments instead of
gathering the visible union into one packed matrix.

The vectorized-engine sharded trajectory is the oracle (same splats, same
optimizer; the only difference is compositing-rounding, ~1e-12), the
fan-out width must never show, and the gather-free claim is pinned by a
MemoryTracker peak comparison — the fragment path's staging windows are
sequential per shard, so its aggregate peak sits strictly below the
all-shards-at-once gather peak.
"""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.render import RasterConfig
from repro.render.parallel import shutdown_raster_pools


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_raster_pools()


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=250, width=36, height=28,
            num_train_cameras=6, num_test_cameras=2,
            altitude=12.0, seed=11,
        )
    )


def make(scene, system="sharded", **cfg):
    defaults = dict(
        system=system, scene_extent=scene.extent, ssim_lambda=0.2,
        mem_limit=1.0, seed=0,
    )
    defaults.update(cfg)
    return create_system(scene.initial.copy(), GSScaleConfig(**defaults))


def run(scene, system="sharded", steps=6, **cfg):
    s = make(scene, system, **cfg)
    reports = []
    for i in range(steps):
        reports.append(
            s.step(scene.train_cameras[i % 6], scene.train_images[i % 6])
        )
    s.finalize()
    return s, reports


FRAG = RasterConfig(engine="fragment")
VEC = RasterConfig(engine="vectorized")


class TestTrajectoryParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_matches_vectorized_sharded(self, scene, num_shards):
        ref, ref_reports = run(scene, num_shards=num_shards, raster=VEC)
        frag, frag_reports = run(scene, num_shards=num_shards, raster=FRAG)
        for a, b in zip(ref_reports, frag_reports):
            assert b.loss == pytest.approx(a.loss, abs=1e-9)
            assert b.num_visible == a.num_visible
        # same Adam-sensitivity caveat as the parallel parity suite: the
        # ~1e-12 compositing rounding passes through Adam's rsqrt
        np.testing.assert_allclose(
            frag.materialized_model().params,
            ref.materialized_model().params,
            atol=2e-4, rtol=0,
        )

    def test_image_splitting_regions_match(self, scene):
        """Region-split renders (the tight-memory path) stay on-trajectory
        too: each region composites its own fragment set."""
        ref = make(scene, num_shards=3, mem_limit=1e-6, ssim_lambda=0.0,
                   raster=VEC)
        frag = make(scene, num_shards=3, mem_limit=1e-6, ssim_lambda=0.0,
                    raster=FRAG)
        ra = ref.step(scene.train_cameras[0], scene.train_images[0])
        rb = frag.step(scene.train_cameras[0], scene.train_images[0])
        assert ra.num_regions == rb.num_regions >= 2
        assert rb.loss == pytest.approx(ra.loss, abs=1e-9)


class TestDeterminism:
    def test_shard_workers_bit_identical(self, scene):
        """The fragment fan-out width never shows in the numerics."""
        serial, _ = run(scene, num_shards=4, raster=FRAG)
        fanned, _ = run(scene, num_shards=4, raster=FRAG, shard_workers=2)
        np.testing.assert_array_equal(
            serial.materialized_model().params,
            fanned.materialized_model().params,
        )

    def test_outofcore_bit_identical_to_in_memory(self, scene, tmp_path):
        """Paging shard state through disk is placement, not numerics."""
        mem, _ = run(scene, num_shards=4, raster=FRAG)
        ooc, _ = run(
            scene, "outofcore", num_shards=4, resident_shards=1,
            spill_dir=str(tmp_path / "spill"), raster=FRAG,
        )
        np.testing.assert_array_equal(
            mem.materialized_model().params,
            ooc.materialized_model().params,
        )


class TestNoFullMaterialization:
    def test_fragment_peak_below_gather_peak(self, scene):
        """The gather path stages every shard's window at once to build
        the packed union; the fragment path stages one shard at a time,
        so its tracked peak must sit strictly below."""
        gather, _ = run(scene, num_shards=4, raster=VEC, steps=3)
        frag, _ = run(scene, num_shards=4, raster=FRAG, steps=3)
        assert frag.memory.peak_bytes < gather.memory.peak_bytes

    def test_outofcore_fragment_trains_under_gather_peak(self, scene,
                                                         tmp_path):
        gather, _ = run(
            scene, "outofcore", num_shards=4, resident_shards=1,
            spill_dir=str(tmp_path / "a"), raster=VEC, steps=3,
        )
        frag, _ = run(
            scene, "outofcore", num_shards=4, resident_shards=1,
            spill_dir=str(tmp_path / "b"), raster=FRAG, steps=3,
        )
        assert frag.memory.peak_bytes < gather.memory.peak_bytes
