"""Store-conformance harness: one suite, every ParameterStore placement.

Five store implementations share the ``ParameterStore`` protocol
(Device/Host/Hybrid/Sharded/Disk). This suite runs the same contract
against each of them through parameterized factories:

* the ``stage -> unstage -> commit -> return_grads`` trajectory matches a
  :class:`DeviceStore` oracle driven with identical gradients (bit-exact
  for every placement without the deferred approximation, and within the
  epsilon-factoring tolerance for deferred ones);
* ``state_dict`` / ``load_state_dict`` round-trips bit-exactly into a
  freshly built store;
* tracker charges return to their resident baseline and ledger traffic
  stays symmetric after ``flush`` — placement changes accounting, never
  numerics, and never leaks.

Adding a new placement means adding a factory here; the contract comes for
free.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.stores import (
    DeviceStore,
    DiskStore,
    HostStore,
    HybridStore,
    ResidentSet,
    ShardedStore,
    _WriteBehindWriter,
)
from repro.core.systems import TransferLedger
from repro.gaussians import layout
from repro.optim.base import AdamConfig
from repro.sim.memory import MemoryTracker

N_ROWS = 24
ADAM = AdamConfig(lr=1e-2)


def _params(n=N_ROWS, dim=layout.PARAM_DIM, seed=5):
    return np.random.default_rng(seed).normal(size=(n, dim))


@dataclasses.dataclass
class Harness:
    """A store under test plus everything needed to audit it."""

    store: object
    device_tracker: MemoryTracker
    ledger: TransferLedger
    exact: bool  # bit-exact vs the dense oracle (no deferred approximation)
    host_tracker: MemoryTracker | None = None
    resident_set: ResidentSet | None = None


def make_device(tmp_path):
    tracker = MemoryTracker()
    store = DeviceStore(_params(), layout.ALL_BLOCK, ADAM, tracker)
    return Harness(store, tracker, TransferLedger(), exact=True)


def make_host(tmp_path):
    tracker, ledger = MemoryTracker(), TransferLedger()
    store = HostStore(_params(), layout.ALL_BLOCK, ADAM, tracker, ledger)
    return Harness(store, tracker, ledger, exact=True)


def make_host_forwarding(tmp_path):
    tracker, ledger = MemoryTracker(), TransferLedger()
    store = HostStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger, forwarding=True
    )
    return Harness(store, tracker, ledger, exact=True)


def make_host_deferred(tmp_path):
    tracker, ledger = MemoryTracker(), TransferLedger()
    store = HostStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger,
        forwarding=True, deferred=True,
    )
    return Harness(store, tracker, ledger, exact=False)


def make_hybrid(tmp_path):
    tracker, ledger = MemoryTracker(), TransferLedger()
    p = _params()
    geo = DeviceStore(
        p[:, layout.GEOMETRIC_SLICE], layout.GEOMETRIC_BLOCK, ADAM, tracker,
        label="geo",
    )
    host = HostStore(
        p[:, layout.NON_GEOMETRIC_SLICE], layout.NON_GEOMETRIC_BLOCK, ADAM,
        tracker, ledger, forwarding=True,
    )
    return Harness(HybridStore([geo, host]), tracker, ledger, exact=True)


def make_sharded(tmp_path):
    tracker, ledger = MemoryTracker(), TransferLedger()
    p = _params()
    rows = [np.arange(k, N_ROWS, 3) for k in range(3)]  # interleaved shards
    stores = []
    for r in rows:
        sub_tracker = MemoryTracker(parent=tracker)
        sub_ledger = TransferLedger(parent=ledger)
        geo = DeviceStore(
            p[r][:, layout.GEOMETRIC_SLICE], layout.GEOMETRIC_BLOCK, ADAM,
            sub_tracker, label="geo",
        )
        host = HostStore(
            p[r][:, layout.NON_GEOMETRIC_SLICE], layout.NON_GEOMETRIC_BLOCK,
            ADAM, sub_tracker, sub_ledger, forwarding=True,
        )
        stores.append(HybridStore([geo, host]))
    return Harness(ShardedStore(rows, stores), tracker, ledger, exact=True)


def make_disk(tmp_path):
    tracker, ledger = MemoryTracker(), TransferLedger()
    host_tracker = MemoryTracker()
    store = DiskStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger,
        spill_path=str(tmp_path / "conformance_disk"),
        host_memory=host_tracker, forwarding=True, deferred=True,
    )
    return Harness(
        store, tracker, ledger, exact=False, host_tracker=host_tracker
    )


def make_disk_spilling(tmp_path):
    """DiskStore under a budget-1 resident set plus a sibling store, so
    every few operations the store under test is forcibly spilled."""
    tracker, ledger = MemoryTracker(), TransferLedger()
    host_tracker = MemoryTracker()
    rset = ResidentSet(budget=1)
    store = DiskStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger,
        spill_path=str(tmp_path / "conformance_spilling"),
        host_memory=host_tracker, resident_set=rset,
        forwarding=True, deferred=True,
    )
    return Harness(
        store, tracker, ledger, exact=False,
        host_tracker=host_tracker, resident_set=rset,
    )


def make_disk_f16(tmp_path):
    """DiskStore through the lossy float16 page codec: the conformance
    contract (protocol, accounting, round-trips) must hold regardless of
    what the codec does to spilled bytes. Quantized-trajectory tolerance
    is pinned separately in the deep out-of-core suite."""
    tracker, ledger = MemoryTracker(), TransferLedger()
    host_tracker = MemoryTracker()
    store = DiskStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger,
        spill_path=str(tmp_path / "conformance_f16"),
        host_memory=host_tracker, forwarding=True, deferred=True,
        codec="float16",
    )
    return Harness(
        store, tracker, ledger, exact=False, host_tracker=host_tracker
    )


def make_disk_lossless(tmp_path):
    """DiskStore through the lossless (shuffle+zlib) codec under a
    budget-1 resident set: compression must be pure placement — the
    trajectory stays bit-exact against the dense oracle."""
    tracker, ledger = MemoryTracker(), TransferLedger()
    host_tracker = MemoryTracker()
    rset = ResidentSet(budget=1)
    store = DiskStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger,
        spill_path=str(tmp_path / "conformance_lossless"),
        host_memory=host_tracker, resident_set=rset,
        forwarding=True, codec="lossless",
    )
    return Harness(
        store, tracker, ledger, exact=True,
        host_tracker=host_tracker, resident_set=rset,
    )


def make_disk_write_behind(tmp_path):
    """DiskStore with a write-behind writer: queued page-outs (and the
    re-adopt-on-page-in shortcut) must be invisible to the contract."""
    tracker, ledger = MemoryTracker(), TransferLedger()
    host_tracker = MemoryTracker()
    store = DiskStore(
        _params(), layout.ALL_BLOCK, ADAM, tracker, ledger,
        spill_path=str(tmp_path / "conformance_wb"),
        host_memory=host_tracker, forwarding=True,
        writer=_WriteBehindWriter(),
    )
    return Harness(
        store, tracker, ledger, exact=True, host_tracker=host_tracker
    )


FACTORIES = {
    "device": make_device,
    "host": make_host,
    "host_forwarding": make_host_forwarding,
    "host_deferred": make_host_deferred,
    "hybrid": make_hybrid,
    "sharded": make_sharded,
    "disk": make_disk,
    "disk_spilling": make_disk_spilling,
    "disk_f16": make_disk_f16,
    "disk_lossless": make_disk_lossless,
    "disk_write_behind": make_disk_write_behind,
}

param_store = pytest.mark.parametrize("factory", FACTORIES, ids=FACTORIES)


def drive(store, steps=6, seed=9, spill_every=None):
    """Run the training-step protocol with deterministic gradients."""
    rng = np.random.default_rng(seed)
    for step in range(steps):
        size = int(rng.integers(0, N_ROWS))
        ids = np.sort(rng.choice(N_ROWS, size=size, replace=False))
        store.stage(ids)
        store.unstage(ids)
        store.commit()
        store.return_grads(ids, rng.normal(size=(ids.size, store.dim)))
        if spill_every and (step + 1) % spill_every == 0 and hasattr(store, "spill"):
            store.spill()
    store.flush()


DISK_CODECS = ("raw", "float16", "lossless")


class TestZeroRowStores:
    """The degenerate shard every partitioner can emit (empty spatial
    cell, more shards than splats) must satisfy the same contract: the
    full step protocol, spill/page-in, and state round-trips are no-ops
    that neither raise nor leak accounting, under every page codec."""

    def make_empty_disk(self, tmp_path, codec):
        tracker, ledger = MemoryTracker(), TransferLedger()
        host_tracker = MemoryTracker()
        store = DiskStore(
            _params(0), layout.ALL_BLOCK, ADAM, tracker, ledger,
            spill_path=str(tmp_path / f"empty_{codec}"),
            host_memory=host_tracker, forwarding=True, codec=codec,
        )
        return Harness(
            store, tracker, ledger, exact=True, host_tracker=host_tracker
        )

    @pytest.mark.parametrize("codec", DISK_CODECS)
    def test_protocol_spill_and_materialize(self, tmp_path, codec):
        h = self.make_empty_disk(tmp_path, codec)
        ids = np.empty(0, dtype=np.int64)
        for _ in range(3):
            h.store.stage(ids)
            h.store.unstage(ids)
            h.store.commit()
            h.store.return_grads(ids, np.empty((0, h.store.dim)))
            h.store.spill()
        assert h.store.materialize().shape == (0, layout.PARAM_DIM)
        h.store.flush()
        assert h.ledger.h2d_bytes == h.ledger.d2h_bytes == 0

    @pytest.mark.parametrize("codec", DISK_CODECS)
    def test_state_dict_roundtrip(self, tmp_path, codec):
        h = self.make_empty_disk(tmp_path, codec)
        saved = {k: np.array(v) for k, v in h.store.state_dict().items()}
        fresh = self.make_empty_disk(tmp_path / "fresh", codec)
        fresh.store.load_state_dict(saved)
        assert fresh.store.materialize().shape == (0, layout.PARAM_DIM)

    @pytest.mark.parametrize("codec", DISK_CODECS)
    def test_accounting_stays_at_baseline(self, tmp_path, codec):
        h = self.make_empty_disk(tmp_path, codec)
        device_baseline = h.device_tracker.live_bytes
        host_baseline = h.host_tracker.live_bytes
        h.store.spill()
        h.store.materialize()
        h.store.flush()
        assert h.device_tracker.live_bytes == device_baseline
        assert h.host_tracker.live_bytes == host_baseline


class TestTrajectoryMatchesOracle:
    """stage/return_grads/commit numerics equal a DeviceStore oracle."""

    @param_store
    def test_final_parameters(self, tmp_path, factory):
        h = FACTORIES[factory](tmp_path)
        oracle = make_device(tmp_path)
        drive(h.store)
        drive(oracle.store)
        got = h.store.materialize()
        want = oracle.store.materialize()
        if h.exact:
            np.testing.assert_array_equal(got, want)
        else:
            # deferred Adam differs only by the epsilon factoring of
            # Equation 3 (Table 3: quality impact nil)
            np.testing.assert_allclose(got, want, rtol=1e-7, atol=1e-9)

    @param_store
    def test_mid_run_materialize_includes_lazy_state(self, tmp_path, factory):
        """materialize() equals the oracle *between* steps too (pending
        gradients and deferred drift must be folded in)."""
        h = FACTORIES[factory](tmp_path)
        oracle = make_device(tmp_path)
        rng_a, rng_b = (np.random.default_rng(3) for _ in range(2))
        for _ in range(4):
            ids = np.sort(rng_a.choice(N_ROWS, size=7, replace=False))
            np.testing.assert_array_equal(
                ids, np.sort(rng_b.choice(N_ROWS, size=7, replace=False))
            )
            grads = rng_a.normal(size=(ids.size, h.store.dim))
            rng_b.normal(size=(ids.size, oracle.store.dim))  # keep in sync
            for s in (h.store, oracle.store):
                s.stage(ids)
                s.unstage(ids)
                s.commit()
                s.return_grads(ids, grads)
            tol = {} if h.exact else dict(rtol=1e-7, atol=1e-9)
            np.testing.assert_allclose(
                h.store.materialize(), oracle.store.materialize(),
                rtol=tol.get("rtol", 0), atol=tol.get("atol", 0),
            )


class TestStateDictRoundtrip:
    """state_dict/load_state_dict is bit-exact into a fresh store."""

    @param_store
    def test_roundtrip_bit_exact(self, tmp_path, factory):
        h = FACTORIES[factory](tmp_path)
        drive(h.store)
        saved = {k: np.array(v) for k, v in h.store.state_dict().items()}

        fresh = FACTORIES[factory](tmp_path / "fresh")
        fresh.store.load_state_dict(saved)
        reloaded = fresh.store.state_dict()
        assert set(reloaded) == set(saved)
        for key, value in saved.items():
            np.testing.assert_array_equal(
                np.asarray(reloaded[key]), value, err_msg=key
            )
        np.testing.assert_array_equal(
            fresh.store.materialize(), h.store.materialize()
        )

    @param_store
    def test_loaded_store_continues_identically(self, tmp_path, factory):
        h = FACTORIES[factory](tmp_path)
        drive(h.store, steps=4)
        saved = {k: np.array(v) for k, v in h.store.state_dict().items()}
        fresh = FACTORIES[factory](tmp_path / "fresh")
        fresh.store.load_state_dict(saved)
        drive(h.store, steps=3, seed=21)
        drive(fresh.store, steps=3, seed=21)
        np.testing.assert_array_equal(
            fresh.store.materialize(), h.store.materialize()
        )


class TestAccountingConservation:
    """Ledger bytes and tracker charges return to baseline after flush."""

    @param_store
    def test_tracker_returns_to_baseline(self, tmp_path, factory):
        h = FACTORIES[factory](tmp_path)
        device_baseline = h.device_tracker.live_bytes
        drive(h.store)
        assert h.device_tracker.live_bytes == device_baseline
        for cat, live in h.device_tracker.live_by_category().items():
            if cat in ("staged_params", "staged_grads"):
                assert live == 0, cat

    @param_store
    def test_ledger_traffic_is_symmetric(self, tmp_path, factory):
        """Every staged byte comes back as a gradient byte, and every
        page-out has a matching page-in volume granularity."""
        h = FACTORIES[factory](tmp_path)
        drive(h.store)
        assert h.ledger.h2d_bytes == h.ledger.d2h_bytes
        state = 3 * layout.param_bytes(N_ROWS, h.store.dim)
        for traffic in (h.ledger.page_in_bytes, h.ledger.page_out_bytes):
            assert traffic % state == 0

    @param_store
    def test_host_tracker_bounded_by_residency(self, tmp_path, factory):
        h = FACTORIES[factory](tmp_path)
        if h.host_tracker is None:
            pytest.skip("placement has no host tier")
        drive(h.store, spill_every=2)
        state = 3 * layout.param_bytes(N_ROWS, h.store.dim)
        assert h.host_tracker.peak_bytes <= state + N_ROWS  # + counters
        h.store.spill()
        assert h.host_tracker.live_by_category()["host_resident_state"] == 0
