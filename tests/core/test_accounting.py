"""Byte-level accounting tests: ledgers and memory trackers of the
functional systems must match the paper's formulas exactly."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.sim.memory import ACTIVATION_BYTES_PER_PIXEL


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=180, width=30, height=20,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=77,
        )
    )


def one_step(scene, system, **cfg):
    defaults = dict(
        system=system, scene_extent=scene.extent, ssim_lambda=0.0,
        mem_limit=1.0, seed=0,
    )
    defaults.update(cfg)
    s = create_system(scene.initial.copy(), GSScaleConfig(**defaults))
    report = s.step(scene.train_cameras[0], scene.train_images[0])
    return s, report


class TestLedgerFormulas:
    def test_baseline_transfers_full_rows(self, scene):
        s, report = one_step(scene, "baseline_offload")
        expected = report.num_visible * layout.PARAM_DIM * 4
        assert s.ledger.h2d_bytes == expected
        assert s.ledger.d2h_bytes == expected
        assert s.ledger.h2d_count == 1

    def test_gsscale_transfers_non_geometric_rows(self, scene):
        s, report = one_step(scene, "gsscale")
        expected = report.num_visible * layout.NON_GEOMETRIC_DIM * 4
        assert s.ledger.h2d_bytes == expected
        assert s.ledger.d2h_bytes == expected

    def test_split_step_transfers_more_than_whole(self, scene):
        """Boundary Gaussians are staged for both regions — splitting
        trades extra transfer volume for lower peak memory."""
        s1, r1 = one_step(scene, "gsscale", mem_limit=1.0)
        s2, r2 = one_step(scene, "gsscale", mem_limit=1e-6)
        assert r2.num_regions >= 2
        assert s2.ledger.h2d_bytes >= s1.ledger.h2d_bytes
        assert s2.ledger.h2d_count == r2.num_regions

    def test_transfer_accumulates_over_steps(self, scene):
        s, _ = one_step(scene, "gsscale")
        first = s.ledger.h2d_bytes
        s.step(scene.train_cameras[1], scene.train_images[1])
        assert s.ledger.h2d_bytes > first


class TestMemoryFormulas:
    def test_gpu_only_resident_state(self, scene):
        s, _ = one_step(scene, "gpu_only")
        n = scene.initial.num_gaussians
        state = 4 * layout.param_bytes(n)
        act = scene.train_cameras[0].num_pixels * ACTIVATION_BYTES_PER_PIXEL
        assert s.memory.peak_bytes == state + act

    def test_gsscale_resident_floor(self, scene):
        s, report = one_step(scene, "gsscale")
        n = scene.initial.num_gaussians
        geo_state = 4 * layout.param_bytes(n, layout.GEOMETRIC_DIM)
        staged = 2 * report.num_visible * layout.NON_GEOMETRIC_DIM * 4
        act = scene.train_cameras[0].num_pixels * ACTIVATION_BYTES_PER_PIXEL
        assert s.memory.peak_bytes == geo_state + staged + act

    def test_staging_freed_between_steps(self, scene):
        s, _ = one_step(scene, "gsscale")
        live = s.memory.live_by_category()
        assert live.get("staged_params", 0) == 0
        assert live.get("staged_grads", 0) == 0
        assert live.get("activations", 0) == 0
        # geometric block stays resident
        assert live["geo_params"] > 0

    def test_geometric_is_17_percent(self, scene):
        a, _ = one_step(scene, "gpu_only")
        b, _ = one_step(scene, "gsscale")
        n = scene.initial.num_gaussians
        geo_resident = b.memory.live_by_category()
        resident_state = (
            geo_resident["geo_params"]
            + geo_resident["geo_grads"]
            + geo_resident["geo_opt_states"]
        )
        full_state = 4 * layout.param_bytes(n)
        assert resident_state / full_state == pytest.approx(
            layout.GEOMETRIC_FRACTION, abs=1e-9
        )


class TestStepReports:
    def test_report_fields(self, scene):
        _, report = one_step(scene, "gsscale")
        assert report.iteration == 1
        assert report.num_visible == report.valid_ids.size
        assert report.mean2d_abs.shape == (report.num_visible,)
        assert np.isfinite(report.loss)

    def test_iteration_counter_advances(self, scene):
        s, _ = one_step(scene, "gpu_only")
        r2 = s.step(scene.train_cameras[1], scene.train_images[1])
        assert r2.iteration == 2
