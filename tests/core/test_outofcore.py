"""Regression tests of the out-of-core placement tier.

The PR-acceptance bar: an out-of-core K=4 run is numerically identical
(<= 1e-12; in fact bit-exact) to the in-memory sharded run while its peak
*tracked host* bytes equal the resident-set budget — placement changes
accounting, never numerics. Plus the spill/prefetch lifecycle, the page
ledger channel, checkpointing from spilled state, and trainer integration.
"""

import os

import numpy as np
import pytest

from repro.core import GSScaleConfig, Trainer, create_system
from repro.core.checkpoint import load_checkpoint, resume_model, save_checkpoint
from repro.core.stores import ResidentSet
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.densify import DensifyConfig
from repro.gaussians import layout


@pytest.fixture(scope="module")
def scene():
    # num_points chosen so the (pruned) Gaussian count divides evenly by
    # K=4: equal shards make the resident-budget assertion exact
    s = build_scene(
        SyntheticSceneConfig(
            num_points=240, width=36, height=28,
            num_train_cameras=6, num_test_cameras=2,
            altitude=12.0, seed=11,
        )
    )
    assert s.initial.num_gaussians % 4 == 0
    return s


def make(scene, system="outofcore", **cfg):
    defaults = dict(
        system=system, scene_extent=scene.extent, ssim_lambda=0.2,
        mem_limit=1.0, seed=0, num_shards=4,
    )
    defaults.update(cfg)
    return create_system(scene.initial.copy(), GSScaleConfig(**defaults))


def run(scene, system="outofcore", steps=8, **cfg):
    s = make(scene, system, **cfg)
    reports = []
    for i in range(steps):
        reports.append(
            s.step(scene.train_cameras[i % 6], scene.train_images[i % 6])
        )
    s.finalize()
    return s, reports


def shard_state_bytes(system) -> int:
    """fp32-equivalent pageable bytes of one (equal-size) shard."""
    per_shard = system.num_gaussians // system.num_shards
    return 3 * layout.param_bytes(per_shard, layout.NON_GEOMETRIC_DIM)


class TestNumericalIdentity:
    def test_outofcore_k4_is_bit_identical_to_sharded(self, scene):
        """The acceptance bar (<=1e-12); paging round-trips are bit-exact,
        so the runs agree to the last bit."""
        a, ra = run(scene, "sharded", steps=8)
        b, rb = run(scene, "outofcore", steps=8, resident_shards=1)
        np.testing.assert_array_equal(
            a.materialized_model().params, b.materialized_model().params
        )
        for x, y in zip(ra, rb):
            assert x.loss == y.loss
            assert x.num_visible == y.num_visible

    def test_resident_budget_does_not_change_numerics(self, scene):
        models = {}
        for r in (1, 2, 4):
            s, _ = run(scene, "outofcore", steps=6, resident_shards=r)
            models[r] = s.materialized_model().params
        np.testing.assert_array_equal(models[1], models[2])
        np.testing.assert_array_equal(models[1], models[4])

    def test_pcie_traffic_matches_sharded(self, scene):
        """The disk tier adds page traffic; it must not perturb the PCIe
        channel (same staged rows, same bytes)."""
        a, _ = run(scene, "sharded", steps=5)
        b, _ = run(scene, "outofcore", steps=5, resident_shards=1)
        assert a.ledger.h2d_bytes == b.ledger.h2d_bytes
        assert a.ledger.d2h_bytes == b.ledger.d2h_bytes
        assert a.ledger.page_in_bytes == 0  # in-memory system never pages
        assert b.ledger.page_in_bytes > 0


class TestResidentSetAccounting:
    @pytest.mark.parametrize("budget", [1, 2])
    def test_peak_host_bytes_equal_resident_budget(self, scene, budget):
        """The acceptance bar: peak tracked host bytes == the resident-set
        size (budget shards' pageable state + every shard's counters)."""
        s, _ = run(scene, "outofcore", steps=8, resident_shards=budget)
        expected = budget * shard_state_bytes(s) + s.num_gaussians
        assert s.host_memory.peak_bytes == expected

    def test_full_budget_keeps_every_shard_host_resident_at_peak(self, scene):
        s, _ = run(scene, "outofcore", steps=4, resident_shards=4)
        expected = 4 * shard_state_bytes(s) + s.num_gaussians
        assert s.host_memory.peak_bytes == expected

    def test_live_host_bytes_never_exceed_budget(self, scene):
        s = make(scene, "outofcore", resident_shards=1)
        cap = shard_state_bytes(s) + s.num_gaussians
        for i in range(6):
            s.step(scene.train_cameras[i % 6], scene.train_images[i % 6])
            assert s.host_memory.live_bytes <= cap

    def test_page_ledger_rolls_up_and_quantizes(self, scene):
        """Per-shard page traffic partitions the aggregate, and every
        page-in/out moves exactly one shard's pageable state."""
        s, _ = run(scene, "outofcore", steps=6, resident_shards=1)
        reports = s.shard_reports()
        assert sum(r.page_in_bytes for r in reports) == s.ledger.page_in_bytes
        assert sum(r.page_out_bytes for r in reports) == s.ledger.page_out_bytes
        state = shard_state_bytes(s)
        assert s.ledger.page_in_bytes == s.ledger.page_in_count * state
        assert s.ledger.page_out_bytes == s.ledger.page_out_count * state
        # each spill has (at most) one matching page-in outstanding
        assert s.ledger.page_out_count >= s.ledger.page_in_count

    def test_device_side_accounting_unchanged(self, scene):
        """Moving host state out-of-core must not move a single device
        byte: per-shard device trackers match the in-memory run."""
        a, _ = run(scene, "sharded", steps=5)
        b, _ = run(scene, "outofcore", steps=5, resident_shards=1)
        for ta, tb in zip(a.shard_trackers, b.shard_trackers):
            assert ta.peak_bytes == tb.peak_bytes
            assert ta.live_bytes == tb.live_bytes


class TestSpillLifecycle:
    def test_spill_inactive_leaves_active_resident(self, scene):
        s = make(scene, "outofcore", resident_shards=4)
        cam = scene.train_cameras[0]
        s.step(cam, scene.train_images[0])
        active = set(s.active_shard_ids(cam))
        for k in range(s.num_shards):
            assert s._nongeo_store(k).is_resident == (k in active)

    def test_inactive_shard_ticks_without_paging(self, scene, tmp_path):
        """A spilled store with unsaturated counters commits empty steps
        as metadata only — the deferred update is what makes out-of-core
        placement affordable (an untouched shard pages in at most once
        per max_defer steps)."""
        from repro.core.stores import DiskStore
        from repro.core.systems import TransferLedger
        from repro.optim.base import AdamConfig
        from repro.sim.memory import MemoryTracker

        ledger = TransferLedger()
        store = DiskStore(
            np.random.default_rng(0).normal(size=(12, 49)),
            layout.NON_GEOMETRIC_BLOCK, AdamConfig(lr=1e-2),
            MemoryTracker(), ledger,
            spill_path=str(tmp_path / "tick"),
            forwarding=True, deferred=True, max_defer=15,
        )
        store.spill()
        empty = np.empty(0, dtype=np.int64)
        zeros = np.zeros((0, store.dim), dtype=store.dtype)
        for tick in range(1, 16):  # 15 = max_defer empty ticks, no paging
            store.return_grads(empty, zeros)
            store.commit()
            assert store.optimizer.step_count == tick
            assert not store.is_resident
        assert ledger.page_in_count == 0
        # the 16th tick saturates every counter: the store must page in
        store.return_grads(empty, zeros)
        store.commit()
        assert store.is_resident
        assert ledger.page_in_count == 1

    def test_saturated_counters_force_page_in(self, scene):
        """After max_defer empty ticks, the shard must page in to apply
        the saturation flush — and then keeps matching the in-memory run."""
        a, _ = run(scene, "sharded", steps=8, max_defer=2)
        b, _ = run(scene, "outofcore", steps=8, max_defer=2,
                   resident_shards=1)
        np.testing.assert_array_equal(
            a.materialized_model().params, b.materialized_model().params
        )

    def test_explicit_spill_dir_is_used_and_kept(self, scene, tmp_path):
        spill = str(tmp_path / "spill")
        s, _ = run(scene, "outofcore", steps=2, spill_dir=spill,
                   resident_shards=1)
        files = sorted(os.listdir(spill))
        assert any(f.startswith("shard0_host.params") for f in files)
        del s
        assert os.path.isdir(spill)  # caller-provided dirs are never deleted

    def test_resident_set_budget_validation(self):
        with pytest.raises(ValueError):
            ResidentSet(0)
        with pytest.raises(ValueError):
            GSScaleConfig(system="outofcore", resident_shards=0)


class TestCheckpointAndTrainer:
    def test_checkpoint_from_spilled_state_roundtrips(self, tmp_path, scene):
        """save -> spill everything -> save again: identical checkpoints
        (serialization streams from the spill files); resume continues
        bit-exactly against a finalize-aligned uninterrupted run."""
        straight = make(scene, "outofcore", resident_shards=1)
        for i in range(3):
            straight.step(scene.train_cameras[i], scene.train_images[i])
        straight.finalize()
        for i in range(3, 6):
            straight.step(scene.train_cameras[i], scene.train_images[i])
        straight.finalize()

        first = make(scene, "outofcore", resident_shards=1)
        for i in range(3):
            first.step(scene.train_cameras[i], scene.train_images[i])
        path_a = str(tmp_path / "resident.npz")
        save_checkpoint(path_a, first)
        for k in range(first.num_shards):
            first._nongeo_store(k).spill()
        path_b = str(tmp_path / "spilled.npz")
        save_checkpoint(path_b, first)
        with np.load(path_a) as a, np.load(path_b) as b:
            assert set(a.files) == set(b.files)
            for key in a.files:
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)

        resumed = make(scene, "outofcore", resident_shards=1)
        load_checkpoint(path_b, resumed)
        assert resumed.iteration == 3
        for i in range(3, 6):
            resumed.step(scene.train_cameras[i], scene.train_images[i])
        resumed.finalize()
        np.testing.assert_array_equal(
            resumed.materialized_model().params,
            straight.materialized_model().params,
        )

    def test_resume_model_reassembles_packed(self, tmp_path, scene):
        path = str(tmp_path / "m.npz")
        s, _ = run(scene, "outofcore", steps=2, resident_shards=1)
        save_checkpoint(path, s)
        model = resume_model(path)
        np.testing.assert_allclose(
            model.params, s.materialized_model().params, rtol=1e-12
        )

    def test_trains_end_to_end_with_densification(self, scene):
        """Densification rebuilds the partition and the spill files; the
        accounting and the budget survive."""
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            scene_extent=scene.extent, ssim_lambda=0.0, mem_limit=1.0,
            seed=0,
        )
        densify = DensifyConfig(
            interval=4, start_iteration=4, stop_iteration=100,
            grad_threshold=1e-9, percent_dense=0.01,
            max_gaussians=scene.initial.num_gaussians + 80,
        )
        trainer = Trainer(scene.initial.copy(), cfg, densify=densify)
        hist = trainer.train(scene.train_cameras, scene.train_images, 12)
        assert hist.num_iterations == 12
        assert len(hist.densify_reports) >= 1
        assert np.isfinite(hist.final_loss)
        system = trainer.system
        # densification rebuilds reset the ledger; step twice more so the
        # post-rebuild system shows live page traffic
        for i in range(2):
            system.step(scene.train_cameras[i], scene.train_images[i])
        assert system.ledger.page_out_bytes > 0
        # post-rebuild shards are near-equal; the budget still caps live
        # host state at the worst shard + counters
        worst = max(
            3 * layout.param_bytes(r.size, layout.NON_GEOMETRIC_DIM)
            for r in system.shard_rows
        )
        assert system.host_memory.live_bytes <= worst + system.num_gaussians
        ev = trainer.evaluate(scene.test_cameras, scene.test_images)
        assert np.isfinite(ev.psnr)
