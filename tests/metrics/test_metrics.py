"""Tests for PSNR, SSIM (incl. analytic gradient), and the LPIPS proxy."""

import numpy as np
import pytest

from repro.metrics import perceptual_distance, psnr, ssim, ssim_with_grad


def random_image(h=32, w=40, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(h, w, 3))


class TestPSNR:
    def test_identical_is_inf(self):
        img = random_image()
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-9)  # mse = 0.01

    def test_monotone_in_noise(self):
        ref = random_image(seed=1)
        rng = np.random.default_rng(2)
        noise = rng.normal(size=ref.shape)
        p1 = psnr(ref + 0.01 * noise, ref)
        p2 = psnr(ref + 0.05 * noise, ref)
        assert p1 > p2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2, 3)), np.zeros((3, 2, 3)))


class TestSSIM:
    def test_identical_is_one(self):
        img = random_image()
        assert ssim(img, img) == pytest.approx(1.0, abs=1e-9)

    def test_bounded(self):
        a = random_image(seed=3)
        b = random_image(seed=4)
        v = ssim(a, b)
        assert -1.0 <= v < 1.0

    def test_noise_degrades(self):
        ref = random_image(seed=5)
        rng = np.random.default_rng(6)
        noisy = np.clip(ref + 0.2 * rng.normal(size=ref.shape), 0, 1)
        assert ssim(noisy, ref) < ssim(ref, ref)

    def test_grayscale_supported(self):
        a = np.random.default_rng(7).uniform(size=(20, 20))
        assert ssim(a, a) == pytest.approx(1.0, abs=1e-9)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(0.2, 0.8, size=(12, 10, 3))
        y = rng.uniform(0.2, 0.8, size=(12, 10, 3))
        val, grad = ssim_with_grad(x, y, window=5)
        eps = 1e-6
        idx = [(0, 0, 0), (5, 4, 1), (11, 9, 2), (6, 6, 0), (3, 9, 2)]
        for i, j, c in idx:
            orig = x[i, j, c]
            x[i, j, c] = orig + eps
            hi = ssim(x, y, window=5)
            x[i, j, c] = orig - eps
            lo = ssim(x, y, window=5)
            x[i, j, c] = orig
            numeric = (hi - lo) / (2 * eps)
            assert grad[i, j, c] == pytest.approx(numeric, abs=1e-8)

    def test_grad_zero_at_identity(self):
        """SSIM is maximized at x == y, so the gradient interior ~ 0."""
        img = random_image(seed=9)
        _, grad = ssim_with_grad(img, img)
        # gradient at the maximum vanishes (up to float noise)
        assert np.abs(grad).max() < 1e-10


class TestPerceptual:
    def test_identical_is_zero(self):
        img = random_image()
        assert perceptual_distance(img, img) == pytest.approx(0.0, abs=1e-15)

    def test_symmetry(self):
        a = random_image(seed=10)
        b = random_image(seed=11)
        assert perceptual_distance(a, b) == pytest.approx(
            perceptual_distance(b, a), rel=1e-12
        )

    def test_monotone_in_corruption(self):
        ref = random_image(h=48, w=48, seed=12)
        rng = np.random.default_rng(13)
        noise = rng.normal(size=ref.shape)
        d = [
            perceptual_distance(np.clip(ref + s * noise, 0, 1), ref)
            for s in (0.02, 0.1, 0.3)
        ]
        assert d[0] < d[1] < d[2]

    def test_blur_detected(self):
        """Blurring (what too-few Gaussians does) increases the distance."""
        from scipy.ndimage import gaussian_filter

        ref = random_image(h=48, w=48, seed=14)
        blurred = np.stack(
            [gaussian_filter(ref[:, :, c], 2.0) for c in range(3)], axis=2
        )
        assert perceptual_distance(blurred, ref) > 0.01

    def test_deterministic(self):
        a = random_image(seed=15)
        b = random_image(seed=16)
        assert perceptual_distance(a, b) == perceptual_distance(a, b)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            perceptual_distance(np.zeros((2, 2, 3)), np.zeros((2, 2, 3)))

    def test_requires_rgb(self):
        with pytest.raises(ValueError):
            perceptual_distance(np.zeros((8, 8)), np.zeros((8, 8)))


class TestPhotometricLoss:
    def test_zero_at_identity(self):
        from repro.train import photometric_loss

        img = random_image(seed=17)
        res = photometric_loss(img, img)
        assert res.loss == pytest.approx(0.0, abs=1e-9)
        assert res.l1 == pytest.approx(0.0)
        assert res.ssim == pytest.approx(1.0, abs=1e-9)

    def test_gradient_matches_numerical(self):
        from repro.train import photometric_loss

        rng = np.random.default_rng(18)
        x = rng.uniform(0.2, 0.8, size=(10, 8, 3))
        y = rng.uniform(0.2, 0.8, size=(10, 8, 3))
        res = photometric_loss(x, y, ssim_lambda=0.2)
        eps = 1e-7
        for i, j, c in [(0, 0, 0), (4, 4, 1), (9, 7, 2)]:
            orig = x[i, j, c]
            x[i, j, c] = orig + eps
            hi = photometric_loss(x, y, ssim_lambda=0.2).loss
            x[i, j, c] = orig - eps
            lo = photometric_loss(x, y, ssim_lambda=0.2).loss
            x[i, j, c] = orig
            assert res.grad_image[i, j, c] == pytest.approx(
                (hi - lo) / (2 * eps), abs=1e-6
            )

    def test_lambda_zero_is_pure_l1(self):
        from repro.train import photometric_loss

        x = random_image(seed=19)
        y = random_image(seed=20)
        res = photometric_loss(x, y, ssim_lambda=0.0)
        assert res.loss == pytest.approx(res.l1)
        assert res.ssim == 0.0
