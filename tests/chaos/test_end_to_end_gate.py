"""The chaos acceptance gate: one seeded fault plan — a worker kill, a
corrupted page, and a torn checkpoint write — against the three tiers.

(a) sharded out-of-core training absorbs a mid-render worker kill and
    still produces bit-identical parameters; (b) the patch pipeline hit
    by a torn checkpoint write resumes from the rotated last-good
    checkpoint and still converges to the fault-free result; (c) the
    render service under 2x overload answers *every* request — degraded
    or rejected with a reason, never dropped or deadlocked — and its
    stats surface the retry / respawn / quarantine counts.
"""

import os
import time

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import resume_model, validate_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.faults import Fault, FaultPlan, FileFault, active_plan
from repro.recon import CleanConfig, PatchPipelineConfig, run_patch_pipeline
from repro.render import RasterConfig
from repro.render.parallel import (
    raster_pool_fault_stats,
    shutdown_raster_pools,
)
from repro.serve import (
    LODSet,
    RenderRequest,
    RenderService,
    ServeConfig,
)


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_raster_pools()


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=160, width=32, height=24,
            num_train_cameras=8, num_test_cameras=2,
            altitude=12.0, seed=3,
        )
    )


class TestTrainingSurvivesWorkerKill:
    """Gate (a): OoC sharded training, worker killed mid-render."""

    STEPS = 4

    def _train(self, scene, spill_dir):
        config = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            spill_dir=spill_dir, scene_extent=scene.extent,
            ssim_lambda=0.2, mem_limit=1.0, seed=0,
            raster=RasterConfig(engine="fragment", workers=2),
        )
        system = create_system(scene.initial.copy(), config)
        for i in range(self.STEPS):
            system.step(
                scene.train_cameras[i % 8], scene.train_images[i % 8]
            )
        params = np.asarray(system.materialized_model().params).copy()
        system.finalize()
        return params

    def test_bit_identical_params_after_kill(self, scene, tmp_path):
        shutdown_raster_pools()
        clean = self._train(scene, str(tmp_path / "spill_clean"))
        shutdown_raster_pools()  # fresh pool: deterministic kill placement
        plan = FaultPlan(
            token_dir=str(tmp_path / "tokens"),
            faults=(Fault(point="pool:task", action="kill", index=1),),
        )
        with active_plan(plan):
            faulted = self._train(scene, str(tmp_path / "spill_fault"))
        assert raster_pool_fault_stats()["worker_deaths"] >= 1
        np.testing.assert_array_equal(clean, faulted)


class TestPipelineSurvivesTornCheckpoint:
    """Gate (b): patch pipeline resumes across a torn checkpoint write."""

    CONFIG = PatchPipelineConfig(
        num_patches=4, iterations=4, jobs=2, checkpoint_every=2,
        train=GSScaleConfig(system="gpu_only"),
        clean=CleanConfig(
            max_extent=1e9, neighbor_radius=1e9, min_opacity=0.0
        ),
    )

    def test_resumes_from_last_good_and_serves(self, scene, tmp_path):
        reference = run_patch_pipeline(
            scene.initial, scene.train_cameras, scene.train_images,
            str(tmp_path / "ref"), self.CONFIG,
        )

        # the second snapshot of patch 1 tears mid-write; the job folds
        # the crash into a failed result and the pipeline raises
        workdir = str(tmp_path / "faulted")
        plan = FaultPlan(
            token_dir=str(tmp_path / "tokens"),
            file_faults=(
                FileFault(match="patch1.npz", kind="torn", after=1, times=1),
            ),
        )
        with active_plan(plan):
            with pytest.raises(RuntimeError, match="patch 1"):
                run_patch_pipeline(
                    scene.initial, scene.train_cameras,
                    scene.train_images, workdir, self.CONFIG,
                )
        torn = os.path.join(workdir, "patch1.npz")
        assert validate_checkpoint(torn) is not None  # detectably torn
        assert validate_checkpoint(torn + ".prev") is None  # last good

        # re-run, fault-free: patch 1 resumes from .prev, the rest skip,
        # and the merged+cleaned result matches the fault-free pipeline
        result = run_patch_pipeline(
            scene.initial, scene.train_cameras, scene.train_images,
            workdir, self.CONFIG,
        )
        assert result.jobs.all_done
        statuses = {r.index: r.status for r in result.jobs.results}
        assert statuses[1] == "resumed"
        np.testing.assert_array_equal(
            resume_model(result.checkpoint_path).params,
            resume_model(reference.checkpoint_path).params,
        )
        service = RenderService.from_checkpoint(result.checkpoint_path)
        response = service.render(
            RenderRequest(camera=scene.test_cameras[0])
        )
        assert response.status == "ok" and response.image is not None


class TestServingAnswersEveryRequest:
    """Gate (c): 2x overload + a killed farm worker + a corrupt page."""

    def _checkpoint(self, scene, tmp_path):
        from repro.core.checkpoint import save_checkpoint
        from repro.core.trainer import Trainer

        trainer = Trainer(
            scene.initial.copy(), GSScaleConfig(system="gpu_only")
        )
        trainer.train(scene.train_cameras, scene.train_images, 2)
        path = str(tmp_path / "model.npz")
        save_checkpoint(path, trainer.system)
        return path

    def test_overload_degrades_then_rejects_never_drops(
        self, scene, tmp_path
    ):
        shutdown_raster_pools()
        ckpt = self._checkpoint(scene, tmp_path)
        model = resume_model(ckpt)
        service = RenderService(
            model,
            lod_set=LODSet.build(model.params),
            workers=2,
            serve_config=ServeConfig(
                deadline_s=0.5, max_frames_per_tick=4
            ),
        )
        plan = FaultPlan(
            token_dir=str(tmp_path / "tokens"),
            faults=(Fault(point="pool:task", action="kill", index=1),),
        )
        try:
            # two requests go stale past their deadline...
            for camera in scene.train_cameras[:2]:
                service.submit(RenderRequest(camera=camera))
            time.sleep(0.6)
            # ...then 8 unique fresh frames hit a 4-frame budget (2x)
            for camera in scene.train_cameras:
                service.submit(
                    RenderRequest(camera=camera, width=40, height=30)
                )
            with active_plan(plan):
                responses = service.tick()

            assert len(responses) == 10  # every request answered
            by_status: dict = {}
            for resp in responses:
                by_status.setdefault(resp.status, []).append(resp)
                assert resp.status in ("ok", "degraded", "rejected", "error")
                if resp.image is None:
                    assert resp.reason  # no frame ⇒ always a reason
            reasons = {r.reason for r in by_status.get("rejected", ())}
            assert "deadline" in reasons and "overload" in reasons
            assert len(by_status.get("degraded", ())) >= 1
            stats = service.stats
            assert stats.deadline_rejects == 2
            assert stats.degraded >= 1 and stats.rejected >= 2
            # the killed farm worker surfaces in the service stats
            assert stats.pool_worker_deaths >= 1
            assert stats.pool_respawns >= 1
        finally:
            service.close()
            shutdown_raster_pools()

    def test_poisoned_page_fails_alone_and_quarantines(
        self, scene, tmp_path
    ):
        from repro.faults import corrupt_file

        ckpt = self._checkpoint(scene, tmp_path)
        page_dir = str(tmp_path / "pages")
        service = RenderService.from_checkpoint(
            ckpt, host_budget_bytes=1 << 14, num_shards=4,
            page_dir=page_dir, codec="float16",
        )
        try:
            pages = sorted(
                f for f in os.listdir(page_dir) if f.endswith(".pagez")
            )
            corrupt_file(
                os.path.join(page_dir, pages[0]), offset=128, length=32
            )
            service.store.shards[0].spill()  # next touch re-reads disk
            first = service.render(
                RenderRequest(camera=scene.train_cameras[0])
            )
            assert first.status == "error"
            assert "Quarantin" in first.reason or "Corrupt" in first.reason
            assert service.stats.quarantined_pages == 1
            # the service keeps answering: later requests fail fast on
            # the quarantine record instead of deadlocking or re-reading
            second = service.render(
                RenderRequest(camera=scene.train_cameras[1])
            )
            assert second.status in ("ok", "error")
            assert second.reason or second.image is not None
        finally:
            service.close()
