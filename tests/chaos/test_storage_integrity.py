"""Storage integrity: checksummed pages, atomic writes, corrupt
checkpoints, and serving-page quarantine.

Silent disk corruption must never flow back into the math. Every spill
page (raw or encoded), every sealed serving page, and every checkpoint
read must either verify or raise a typed error naming what broke — and
every write must be atomic, so a torn write can only ever leave the
*previous* bytes or a detectably-torn file, never a silent half-write.
"""

import os
import zipfile

import numpy as np
import pytest

from repro.core import CorruptCheckpointError, CorruptPageError
from repro.core.checkpoint import (
    CheckpointReader,
    load_checkpoint,
    save_checkpoint,
    validate_checkpoint,
)
from repro.core.integrity import (
    PAGE_MAGIC,
    atomic_savez,
    atomic_write_bytes,
    seal_page,
    unseal_page,
)
from repro.core.stores import DiskStore
from repro.core.systems import TransferLedger
from repro.core.trainer import Trainer
from repro.core.config import GSScaleConfig
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.faults import (
    FaultPlan,
    FileFault,
    InjectedFaultError,
    active_plan,
    corrupt_file,
    truncate_file,
)
from repro.gaussians import layout
from repro.optim.base import AdamConfig
from repro.serve import PageQuarantinedError, RenderRequest, RenderService
from repro.sim.memory import MemoryTracker

N = 24
ADAM = AdamConfig(lr=5e-3)


def _params(seed=0):
    return np.random.default_rng(seed).normal(size=(N, layout.PARAM_DIM))


def make_disk(tmp_path, codec="raw", integrity=True, name="spill"):
    return DiskStore(
        _params(), layout.ALL_BLOCK, ADAM, MemoryTracker(),
        TransferLedger(), spill_path=str(tmp_path / name),
        forwarding=True, codec=codec, integrity=integrity,
    )


class TestSealedPages:
    def test_round_trip(self):
        payload = os.urandom(1000)
        assert unseal_page(seal_page(payload)) == payload

    def test_header_is_gsp1(self):
        sealed = seal_page(b"abc")
        assert sealed[:4] == PAGE_MAGIC

    def test_torn_page_detected(self):
        sealed = seal_page(os.urandom(1000))
        with pytest.raises(CorruptPageError, match="torn"):
            unseal_page(sealed[: len(sealed) // 2], "p.pagez")

    def test_bit_rot_detected(self):
        sealed = bytearray(seal_page(os.urandom(1000)))
        sealed[600] ^= 0xFF
        with pytest.raises(CorruptPageError, match="checksum"):
            unseal_page(bytes(sealed), "p.pagez")

    def test_wrong_magic_detected(self):
        with pytest.raises(CorruptPageError, match="magic"):
            unseal_page(b"JUNK" + bytes(20), "p.pagez")


class TestDiskStorePages:
    def test_raw_page_corruption_detected(self, tmp_path):
        store = make_disk(tmp_path, codec="raw")
        store.spill()
        corrupt_file(str(tmp_path / "spill.m.dat"), offset=64, length=16)
        with pytest.raises(CorruptPageError, match="spill.m.dat"):
            store.page_in()

    @pytest.mark.parametrize("codec", ["lossless", "float16"])
    def test_encoded_page_corruption_detected(self, tmp_path, codec):
        store = make_disk(tmp_path, codec=codec)
        store.spill()
        path = str(tmp_path / f"spill.params.{codec}.pagez")
        corrupt_file(path, offset=32, length=8)
        with pytest.raises(CorruptPageError, match="params"):
            store.page_in()

    @pytest.mark.parametrize("codec", ["lossless", "float16"])
    def test_encoded_torn_page_detected(self, tmp_path, codec):
        store = make_disk(tmp_path, codec=codec)
        store.spill()
        path = str(tmp_path / f"spill.v.{codec}.pagez")
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CorruptPageError, match="torn"):
            store.page_in()

    def test_clean_spill_cycle_verifies(self, tmp_path):
        store = make_disk(tmp_path, codec="lossless")
        before = store.materialize().copy()
        store.spill()
        store.page_in()
        np.testing.assert_array_equal(store.materialize(), before)

    def test_integrity_off_skips_checks(self, tmp_path):
        # the opt-out knob: corruption flows through undetected (the
        # pre-PR behaviour), pinning that the flag actually gates it
        store = make_disk(tmp_path, codec="raw", integrity=False)
        store.spill()
        corrupt_file(str(tmp_path / "spill.m.dat"), offset=64, length=16)
        store.page_in()  # no raise


class TestAtomicWrites:
    def test_plain_write_lands(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as fh:
            assert fh.read() == b"payload"
        assert not [f for f in os.listdir(tmp_path) if ".tmp" in f]

    def test_torn_write_is_durable_and_detected(self, tmp_path):
        # the injected tear mangles the temp file, *then* renames it —
        # exactly the bytes a mid-write crash makes durable
        path = str(tmp_path / "page.pagez")
        plan = FaultPlan(
            token_dir=str(tmp_path / "tokens"),
            file_faults=(FileFault(match="page.pagez", kind="torn"),),
        )
        sealed = seal_page(os.urandom(2000))
        with active_plan(plan):
            with pytest.raises(InjectedFaultError):
                atomic_write_bytes(path, sealed)
        assert os.path.exists(path)  # the tear landed (durable)
        with open(path, "rb") as fh:
            buf = fh.read()
        assert len(buf) < len(sealed)
        with pytest.raises(CorruptPageError, match="torn"):
            unseal_page(buf, path)

    def test_savez_appends_extension(self, tmp_path):
        path = atomic_savez(str(tmp_path / "ckpt"), {"a": np.arange(3)})
        assert path.endswith(".npz")
        assert np.array_equal(np.load(path)["a"], np.arange(3))


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    scene = build_scene(
        SyntheticSceneConfig(
            num_points=80, width=24, height=18,
            num_train_cameras=2, num_test_cameras=1, seed=5,
        )
    )
    trainer = Trainer(
        scene.initial.copy(), GSScaleConfig(system="gpu_only")
    )
    trainer.train(scene.train_cameras, scene.train_images, 2)
    path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
    save_checkpoint(path, trainer.system)
    return path, trainer


class TestCorruptCheckpoints:
    def _copy(self, trained, tmp_path):
        src, _ = trained
        dst = str(tmp_path / "copy.npz")
        with open(src, "rb") as a, open(dst, "wb") as b:
            b.write(a.read())
        return dst

    def test_truncated_file_raises_typed_error(self, trained, tmp_path):
        dst = self._copy(trained, tmp_path)
        truncate_file(dst, keep_fraction=0.3)
        _, trainer = trained
        with pytest.raises(CorruptCheckpointError) as exc_info:
            load_checkpoint(dst, trainer.system)
        err = exc_info.value
        assert err.path == dst
        assert err.actual == os.path.getsize(dst)

    def test_reader_names_file_and_block(self, trained, tmp_path):
        # corrupt one member's compressed payload: open succeeds, the
        # block read must raise naming the file, the block, and sizes
        dst = self._copy(trained, tmp_path)
        info = zipfile.ZipFile(dst).infolist()
        member = next(m for m in info if "params" in m.filename)
        # land squarely inside the member's compressed payload: past the
        # 30-byte local header + filename, at the stream's midpoint
        payload_at = member.header_offset + 30 + len(member.filename)
        corrupt_file(
            dst,
            offset=payload_at + member.compress_size // 2,
            length=min(64, member.compress_size // 2),
        )
        reader = None
        try:
            reader = CheckpointReader(dst)
            failures = 0
            for block in reader.blocks():
                try:
                    reader.block_params(block)
                except CorruptCheckpointError as err:
                    failures += 1
                    assert err.path == dst
                    assert err.block
            assert failures >= 1
        except CorruptCheckpointError as err:
            # heavy corruption may already fail at open: still typed
            assert err.path == dst
        finally:
            if reader is not None:
                reader.close()

    def test_validate_checkpoint(self, trained, tmp_path):
        src, _ = trained
        assert validate_checkpoint(src) is None
        assert validate_checkpoint(src, deep=True) is None
        missing = str(tmp_path / "nope.npz")
        assert "missing" in validate_checkpoint(missing)
        dst = self._copy(trained, tmp_path)
        truncate_file(dst, keep_fraction=0.2)
        assert validate_checkpoint(dst) is not None

    def test_garbage_file_raises_typed_error(self, trained, tmp_path):
        dst = str(tmp_path / "junk.npz")
        with open(dst, "wb") as fh:
            fh.write(os.urandom(256))
        _, trainer = trained
        with pytest.raises(CorruptCheckpointError):
            load_checkpoint(dst, trainer.system)
        with pytest.raises(CorruptCheckpointError):
            CheckpointReader(dst)


class TestServingQuarantine:
    @pytest.mark.parametrize("codec", ["raw", "float16"])
    def test_corrupt_page_quarantines_shard(
        self, trained, tmp_path, codec
    ):
        src, _ = trained
        page_dir = str(tmp_path / f"pages_{codec}")
        service = RenderService.from_checkpoint(
            src, host_budget_bytes=1 << 14, num_shards=4,
            page_dir=page_dir, codec=codec,
        )
        try:
            store = service.store
            pages = sorted(
                f for f in os.listdir(page_dir) if not f.endswith(".crc")
            )
            corrupt_file(
                os.path.join(page_dir, pages[0]), offset=128, length=32
            )
            shard = store.shards[0]
            shard.spill()  # drop the host copy: next touch re-reads disk
            with pytest.raises(PageQuarantinedError):
                shard.page_in()
            assert 0 in store.quarantined
            # later touches fail fast on the quarantine record
            with pytest.raises(PageQuarantinedError):
                shard.page_in()
        finally:
            service.close()

    def test_quarantine_count_surfaces_in_serve_stats(
        self, trained, tmp_path
    ):
        src, _ = trained
        page_dir = str(tmp_path / "pages_stats")
        service = RenderService.from_checkpoint(
            src, host_budget_bytes=1 << 14, num_shards=4,
            page_dir=page_dir, codec="float16",
        )
        try:
            store = service.store
            store.quarantined[2] = "test-injected"
            scene_cam = _any_camera(service)
            resp = service.render(RenderRequest(camera=scene_cam))
            assert resp.status in ("ok", "error")
            assert service.stats.quarantined_pages == 1
        finally:
            service.close()


def _any_camera(service):
    from repro.cameras.camera import Camera

    return Camera.look_at(
        [0.0, 0.0, 4.0], [0.0, 0.0, 0.0], width=24, height=18
    )
