"""Fault-plan mechanics: exactly-once firing, scoping, and file mangling.

The rest of the chaos suite trusts :mod:`repro.faults` to fire each
scheduled fault exactly where and exactly as many times as the plan
says; this module pins that contract in-process before the other suites
rely on it across process boundaries.
"""

import os

import pytest

from repro import faults
from repro.faults import (
    Fault,
    FaultPlan,
    FileFault,
    InjectedFaultError,
    active_plan,
    check_write_fault,
    corrupt_file,
    fault_point,
    truncate_file,
)


def plan(tmp_path, **kwargs):
    return FaultPlan(token_dir=str(tmp_path / "tokens"), **kwargs)


class TestPlanLifecycle:
    def test_install_and_clear(self, tmp_path):
        p = plan(tmp_path)
        assert faults.get_plan() is None
        faults.install_plan(p)
        assert faults.get_plan() is p
        assert os.path.isdir(p.token_dir)
        faults.clear_plan()
        assert faults.get_plan() is None

    def test_context_manager_disarms_on_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with active_plan(plan(tmp_path)):
                raise RuntimeError("boom")
        assert faults.get_plan() is None

    def test_disarmed_hooks_are_noops(self, tmp_path):
        fault_point("anything")  # must not raise or require a plan
        assert check_write_fault(str(tmp_path / "x")) is None

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="action"):
            Fault(point="p", action="explode")
        with pytest.raises(ValueError, match="after"):
            Fault(point="p", after=-1)
        with pytest.raises(ValueError, match="kind"):
            FileFault(match="x", kind="melt")
        with pytest.raises(ValueError, match="keep_fraction"):
            FileFault(match="x", keep_fraction=1.5)


class TestFaultPoint:
    def test_raise_fires_exactly_scheduled_visits(self, tmp_path):
        p = plan(
            tmp_path,
            faults=(Fault(point="p", action="raise", after=1, times=2),),
        )
        fired = 0
        with active_plan(p):
            for _ in range(5):
                try:
                    fault_point("p")
                except InjectedFaultError:
                    fired += 1
        assert fired == 2  # visits 1 and 2 of 0..4

    def test_name_and_index_scoping(self, tmp_path):
        p = plan(
            tmp_path,
            faults=(Fault(point="pool:task", action="raise", index=3),),
        )
        with active_plan(p):
            fault_point("other")  # wrong point: no-op, no claim
            fault_point("pool:task", index=1)  # wrong index: no-op
            with pytest.raises(InjectedFaultError):
                fault_point("pool:task", index=3)

    def test_kill_skipped_in_main_process(self, tmp_path):
        # a kill fault visited by the driving process must neither fire
        # nor consume its ordinal (the worker it waits for comes later)
        p = plan(tmp_path, faults=(Fault(point="p", action="kill"),))
        with active_plan(p):
            fault_point("p")
        assert os.listdir(p.token_dir) == []

    def test_delay_sleeps_without_raising(self, tmp_path):
        p = plan(
            tmp_path,
            faults=(Fault(point="p", action="delay", seconds=0.0),),
        )
        with active_plan(p):
            fault_point("p")  # fires (claims + sleeps), no exception
        assert len(os.listdir(p.token_dir)) == 1

    def test_ordinals_shared_across_fault_ids(self, tmp_path):
        # two faults on the same point count their visits independently
        p = plan(
            tmp_path,
            faults=(
                Fault(point="p", action="raise", after=0),
                Fault(point="p", action="delay", after=0, seconds=0.0),
            ),
        )
        with active_plan(p):
            with pytest.raises(InjectedFaultError):
                fault_point("p")
        names = sorted(os.listdir(p.token_dir))
        assert names == ["f0.0"]  # the raise aborted before fault f1 ran


class TestWriteFault:
    def test_matches_substring_and_counts_slots(self, tmp_path):
        p = plan(
            tmp_path,
            file_faults=(FileFault(match="ckpt", after=1, times=1),),
        )
        with active_plan(p):
            assert check_write_fault("/a/other.npz") is None
            assert check_write_fault("/a/ckpt.npz") is None  # visit 0
            fault = check_write_fault("/a/ckpt.npz")  # visit 1: armed
            assert fault is not None and fault.kind == "torn"
            assert check_write_fault("/a/ckpt.npz") is None  # spent


class TestFileManglers:
    def test_truncate(self, tmp_path):
        path = str(tmp_path / "f.bin")
        with open(path, "wb") as fh:
            fh.write(bytes(100))
        truncate_file(path, keep_fraction=0.25)
        assert os.path.getsize(path) == 25

    def test_corrupt_flips_and_preserves_size(self, tmp_path):
        path = str(tmp_path / "f.bin")
        payload = bytes(range(64))
        with open(path, "wb") as fh:
            fh.write(payload)
        corrupt_file(path, offset=8, length=4)
        with open(path, "rb") as fh:
            after = fh.read()
        assert len(after) == 64
        assert after[:8] == payload[:8]
        assert after[8:12] == bytes(b ^ 0xFF for b in payload[8:12])
        assert after[12:] == payload[12:]
