"""Supervised PersistentPool: worker death, deadlines, respawn, teardown.

A SIGKILLed pool worker loses its in-flight task; the stdlib ``map``
would block forever waiting for a result that can never arrive. The
supervised pool must instead detect the death, tear the pool down,
respawn, and re-run the map — and because every task routed through it
is a pure function of its payload, the retried map's results must be
exactly what the fault-free run would have returned.
"""

import time

import numpy as np
import pytest

from repro.faults import Fault, FaultPlan, active_plan
from repro.render.parallel import (
    PersistentPool,
    PoolFaultError,
    get_raster_pool,
    raster_pool_fault_stats,
    shutdown_raster_pools,
)


def _square(x):
    return x * x


def _boom(_):
    raise ValueError("application error")


def _sleepy(x):
    time.sleep(x)
    return x


def kill_plan(tmp_path, index=1, times=1, **kwargs):
    return FaultPlan(
        token_dir=str(tmp_path / "tokens"),
        faults=(
            Fault(point="pool:task", action="kill", index=index,
                  times=times, **kwargs),
        ),
    )


class TestWorkerDeath:
    def test_kill_is_absorbed_and_result_exact(self, tmp_path):
        pool = PersistentPool(2)
        try:
            with active_plan(kill_plan(tmp_path)):
                result = pool.map(_square, [1, 2, 3, 4])
            assert result == [1, 4, 9, 16]
            assert pool.worker_deaths >= 1
            assert pool.respawns >= 1
            assert pool.retries >= 1
        finally:
            pool.close()

    def test_retry_budget_exhaustion_raises_pool_fault(self, tmp_path):
        # the kill re-fires on every attempt: 1 + max_retries deaths,
        # then a clean PoolFaultError instead of a deadlock
        pool = PersistentPool(2, max_retries=1, retry_backoff_s=0.01)
        try:
            plan = kill_plan(tmp_path, index=0, times=10)
            with active_plan(plan):
                with pytest.raises(PoolFaultError, match="2 attempt"):
                    pool.map(_square, [1, 2, 3])
            assert pool.worker_deaths >= 2
            # a failed map never leaves wedged workers behind
            assert not pool.started
            assert pool.map(_square, [5]) == [25]
        finally:
            pool.close()

    def test_zero_retries_fails_fast(self, tmp_path):
        pool = PersistentPool(2, max_retries=0)
        try:
            with active_plan(kill_plan(tmp_path, index=0)):
                with pytest.raises(PoolFaultError):
                    pool.map(_square, [1, 2])
        finally:
            pool.close()

    def test_application_exception_not_retried(self, tmp_path):
        # app errors re-raise as themselves, immediately: retrying a
        # deterministic failure would just fail slower
        pool = PersistentPool(2)
        try:
            with pytest.raises(ValueError, match="application error"):
                pool.map(_boom, [1, 2])
            assert pool.retries == 0
            assert not pool.started
        finally:
            pool.close()


class TestDeadline:
    def test_deadline_triggers_retry_then_fault(self):
        pool = PersistentPool(2, task_timeout=0.2, max_retries=0)
        try:
            with pytest.raises(PoolFaultError, match="deadline"):
                pool.map(_sleepy, [5.0, 5.0])
            assert pool.deadline_hits == 1
        finally:
            pool.close()

    def test_fast_tasks_pass_under_deadline(self):
        pool = PersistentPool(2, task_timeout=30.0)
        try:
            assert pool.map(_sleepy, [0.0, 0.0]) == [0.0, 0.0]
            assert pool.deadline_hits == 0
        finally:
            pool.close()

    def test_per_call_override(self):
        pool = PersistentPool(2)  # no default deadline
        try:
            with pytest.raises(PoolFaultError):
                pool.map(_sleepy, [5.0], timeout=0.2, retries=0)
        finally:
            pool.close()


class TestTeardown:
    def test_close_after_worker_kill_is_bounded(self, tmp_path):
        # close() must come back promptly even when the pool machinery
        # is wedged by a SIGKILLed worker
        pool = PersistentPool(2, max_retries=0)
        try:
            with active_plan(kill_plan(tmp_path, index=0)):
                with pytest.raises(PoolFaultError):
                    pool.map(_square, [1, 2])
        finally:
            t0 = time.monotonic()
            pool.close(join_timeout=5.0)
            pool.close(join_timeout=5.0)  # idempotent
            assert time.monotonic() - t0 < 12.0
        assert not pool.started

    def test_shutdown_raster_pools_idempotent(self):
        pool = get_raster_pool(2)
        assert pool.map(_square, [3]) == [9]
        shutdown_raster_pools()
        assert not pool.started
        shutdown_raster_pools()  # idempotent on an empty registry

    def test_fault_stats_aggregate(self, tmp_path):
        shutdown_raster_pools()
        pool = get_raster_pool(2)
        with active_plan(kill_plan(tmp_path)):
            pool.map(_square, [1, 2, 3])
        stats = raster_pool_fault_stats()
        assert stats["worker_deaths"] >= 1
        assert stats["respawns"] >= 1
        shutdown_raster_pools()


class TestPlanTransport:
    def test_plan_reaches_spawned_workers_via_payloads(self, tmp_path):
        # plans ride the task pickles, not inherited globals: a plan
        # installed *after* the pool's workers spawned still governs them
        pool = PersistentPool(2)
        try:
            assert pool.map(_square, [7]) == [49]  # workers are up
            with active_plan(kill_plan(tmp_path, index=0)):
                assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.worker_deaths >= 1
            # and the plan does not leak into later, unplanned maps
            assert pool.map(_square, [8]) == [64]
            assert pool.worker_deaths == 1
        finally:
            pool.close()

    def test_results_bit_identical_with_and_without_kill(self, tmp_path):
        data = list(np.random.default_rng(0).normal(size=8))
        pool = PersistentPool(2)
        try:
            clean = pool.map(_square, data)
            with active_plan(kill_plan(tmp_path, index=3)):
                faulted = pool.map(_square, data)
            assert clean == faulted  # float-exact: same pure function
        finally:
            pool.close()
