"""Retry-determinism matrix: a worker killed at any pipeline stage must
leave the retried render bit-identical to the fault-free one.

The supervised pool's retry is only sound because every task it carries
is a pure function of its payload. This matrix kills a worker at each
stage of the fragment pipeline (cull / pair build / composite) and in
each parallel span kernel (forward / backward), then asserts the images
and all gradient arrays match the fault-free run bit for bit — not to a
tolerance.
"""

import numpy as np
import pytest

from repro.faults import Fault, FaultPlan, active_plan
from repro.render import RasterConfig
from repro.render.fragment import (
    rasterize_backward_fragment,
    rasterize_fragment,
)
from repro.render.parallel import (
    raster_pool_fault_stats,
    rasterize_backward_parallel,
    rasterize_parallel,
    shutdown_raster_pools,
)

GRAD_FIELDS = ("means2d", "conics", "colors", "opacities", "mean2d_abs")
W, H = 64, 48


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_raster_pools()


@pytest.fixture(scope="module")
def scene_args():
    """Random anisotropic splats, many partially off-screen."""
    rng = np.random.default_rng(7)
    n = 250
    means2d = rng.uniform([-6, -6], [W + 6, H + 6], size=(n, 2))
    sx = rng.uniform(0.8, 4.0, size=n)
    sy = rng.uniform(0.8, 4.0, size=n)
    theta = rng.uniform(0, np.pi, size=n)
    cth, sth = np.cos(theta), np.sin(theta)
    inv_a, inv_b = 1 / sx**2, 1 / sy**2
    conics = np.stack(
        [
            cth**2 * inv_a + sth**2 * inv_b,
            cth * sth * (inv_a - inv_b),
            sth**2 * inv_a + cth**2 * inv_b,
        ],
        axis=1,
    )
    colors = rng.uniform(0, 1, size=(n, 3))
    opacities = rng.uniform(0.05, 1.0, size=n)
    depths = rng.uniform(1, 30, size=n)
    radii = 3 * np.maximum(sx, sy)
    return means2d, conics, colors, opacities, depths, radii


def kill_at(tmp_path, point):
    return FaultPlan(
        token_dir=str(tmp_path / "tokens"),
        faults=(Fault(point=point, action="kill"),),
    )


def _frag_round_trip(scene_args, config):
    grad_image = np.random.default_rng(5).normal(size=(H, W, 3))
    bg = np.array([0.3, 0.1, 0.5])
    fwd = rasterize_fragment(
        *scene_args, width=W, height=H, background=bg, config=config
    )
    bwd = rasterize_backward_fragment(
        scene_args[0], scene_args[1], scene_args[2], scene_args[3],
        fwd, grad_image, background=bg, config=config,
    )
    return fwd, bwd


def _parallel_round_trip(scene_args, config):
    grad_image = np.random.default_rng(5).normal(size=(H, W, 3))
    bg = np.array([0.3, 0.1, 0.5])
    fwd = rasterize_parallel(
        *scene_args, width=W, height=H, background=bg, config=config
    )
    bwd = rasterize_backward_parallel(
        scene_args[0], scene_args[1], scene_args[2], scene_args[3],
        fwd, grad_image, background=bg, config=config,
    )
    return fwd, bwd


def _assert_identical(a, b):
    (fwd_a, bwd_a), (fwd_b, bwd_b) = a, b
    np.testing.assert_array_equal(fwd_a.image, fwd_b.image)
    np.testing.assert_array_equal(
        fwd_a.final_transmittance, fwd_b.final_transmittance
    )
    for field in GRAD_FIELDS:
        np.testing.assert_array_equal(
            getattr(bwd_a, field), getattr(bwd_b, field), err_msg=field
        )


class TestFragmentStageMatrix:
    """Kill one worker at each stage of the per-shard fragment pipeline."""

    CONFIG = RasterConfig(engine="fragment", workers=2, fragment_shards=4)

    @pytest.mark.parametrize(
        "stage", ["fragment:cull", "fragment:pairs", "fragment:composite"]
    )
    def test_kill_at_stage_bit_identical(
        self, scene_args, tmp_path, stage
    ):
        shutdown_raster_pools()  # fresh pool: deterministic kill placement
        clean = _frag_round_trip(scene_args, self.CONFIG)
        with active_plan(kill_at(tmp_path, stage)):
            faulted = _frag_round_trip(scene_args, self.CONFIG)
        assert raster_pool_fault_stats()["worker_deaths"] >= 1
        _assert_identical(clean, faulted)


class TestParallelSpanMatrix:
    """Kill one worker in each span kernel of the parallel engine."""

    CONFIG = RasterConfig(engine="parallel", workers=2)

    @pytest.mark.parametrize("stage", ["span:forward", "span:backward"])
    def test_kill_at_span_bit_identical(self, scene_args, tmp_path, stage):
        shutdown_raster_pools()
        clean = _parallel_round_trip(scene_args, self.CONFIG)
        with active_plan(kill_at(tmp_path, stage)):
            faulted = _parallel_round_trip(scene_args, self.CONFIG)
        assert raster_pool_fault_stats()["worker_deaths"] >= 1
        _assert_identical(clean, faulted)


class TestPoolTaskMatrix:
    """Kill the worker holding each task slot of a fragment dispatch."""

    CONFIG = RasterConfig(engine="fragment", workers=2, fragment_shards=4)

    @pytest.mark.parametrize("index", [0, 3])
    def test_kill_at_task_index_bit_identical(
        self, scene_args, tmp_path, index
    ):
        shutdown_raster_pools()
        clean = _frag_round_trip(scene_args, self.CONFIG)
        plan = FaultPlan(
            token_dir=str(tmp_path / "tokens"),
            faults=(
                Fault(point="pool:task", action="kill", index=index),
            ),
        )
        with active_plan(plan):
            faulted = _frag_round_trip(scene_args, self.CONFIG)
        assert raster_pool_fault_stats()["worker_deaths"] >= 1
        _assert_identical(clean, faulted)
