"""Tests for the quality-scaling model and the bench report harness."""

import os

import numpy as np
import pytest

from repro.bench import (
    LPIPS_DECADE_FACTOR,
    QualityModel,
    Table,
    TABLE3_QUALITY,
)


class TestQualityModel:
    def test_table3_anchor_reproduced(self):
        """At the reference count, the model returns Table 3's values."""
        for key, (p, s, l) in TABLE3_QUALITY.items():
            m = QualityModel(key)
            assert m.psnr(m.ref_n) == pytest.approx(p)
            assert m.ssim(m.ref_n) == pytest.approx(s)
            assert m.lpips(m.ref_n) == pytest.approx(l)

    def test_section56_laptop_deltas(self):
        """4M -> 18M: +2.6% PSNR, +5.1% SSIM, -28.7% LPIPS (geomean)."""
        rel_psnr, rel_ssim, rel_lpips = [], [], []
        for key in TABLE3_QUALITY:
            m = QualityModel(key)
            rel_psnr.append(m.psnr(18e6) / m.psnr(4e6))
            rel_ssim.append(m.ssim(18e6) / m.ssim(4e6))
            rel_lpips.append(m.lpips(18e6) / m.lpips(4e6))
        assert np.mean(rel_psnr) == pytest.approx(1.026, abs=0.004)
        assert np.mean(rel_ssim) == pytest.approx(1.051, abs=0.004)
        assert np.mean(rel_lpips) == pytest.approx(0.713, abs=0.01)

    def test_monotone(self):
        m = QualityModel("rubble")
        counts = [1e6, 4e6, 9e6, 18e6, 40e6]
        psnr = [m.psnr(c) for c in counts]
        lpips = [m.lpips(c) for c in counts]
        assert psnr == sorted(psnr)
        assert lpips == sorted(lpips, reverse=True)

    def test_ssim_clamped(self):
        m = QualityModel("sztu")
        assert m.ssim(1e12) <= 0.999
        assert m.ssim(1) > 0.0

    def test_unknown_scene(self):
        with pytest.raises(KeyError):
            QualityModel("atlantis")

    def test_lpips_decade_factor_sane(self):
        assert 0.5 < LPIPS_DECADE_FACTOR < 0.7

    def test_sweep(self):
        pts = QualityModel("building").sweep([1e6, 2e6])
        assert len(pts) == 2
        assert pts[0].num_gaussians == 1_000_000


class TestHarnessTable:
    def test_render_aligned(self):
        t = Table(title="T", columns=["a", "bbbb"], rows=[[1, 2.5]])
        out = t.render()
        assert "T" in out and "a" in out and "2.50" in out

    def test_row_validation(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_notes_rendered(self):
        t = Table(title="T", columns=["a"], notes=["hello"])
        t.add_row(1)
        assert "note: hello" in t.render()

    def test_float_formatting(self):
        t = Table(title="T", columns=["a", "b", "c", "d"])
        t.add_row(1234.5, 12.345, 0.0123, 0)
        out = t.render()
        assert "1234" in out  # >=100 has no decimals
        assert "12.35" in out or "12.34" in out
        assert "0.012" in out

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "output_dir", lambda: str(tmp_path))
        t = Table(title="X", columns=["v"])
        t.add_row(42)
        text = harness.write_report("unit_test_report", t)
        assert "42" in text
        assert os.path.exists(tmp_path / "unit_test_report.txt")
