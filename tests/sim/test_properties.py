"""Property-based tests (hypothesis) for the performance model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.workload import WorkloadTrace
from repro.sim import (
    CostModel,
    get_platform,
    gpu_only_breakdown,
    gsscale_breakdown,
    simulate_epoch,
    simulate_iteration,
)
from repro.sim.memory import effective_staged_ratio

PLATFORM_KEYS = ["laptop_4070m", "desktop_4080s", "server_h100"]


class TestCostMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        platform=st.sampled_from(PLATFORM_KEYS),
        n=st.integers(100_000, 40_000_000),
        factor=st.floats(1.1, 10.0),
    )
    def test_stage_times_monotone_in_scene_size(self, platform, n, factor):
        cost = CostModel(get_platform(platform))
        n2 = int(n * factor)
        assert cost.gpu_cull(n2) > cost.gpu_cull(n)
        assert cost.cpu_cull(n2) > cost.cpu_cull(n)
        assert cost.gpu_dense_update(n2) > cost.gpu_dense_update(n)
        assert cost.cpu_dense_update(n2) > cost.cpu_dense_update(n)

    @settings(max_examples=30, deadline=None)
    @given(
        platform=st.sampled_from(PLATFORM_KEYS),
        system=st.sampled_from(
            ["gpu_only", "baseline_offload", "gsscale_no_deferred", "gsscale"]
        ),
        n=st.integers(500_000, 20_000_000),
        ratio=st.floats(0.01, 0.29),
        pixels=st.integers(250_000, 8_000_000),
    )
    def test_iteration_time_positive_and_bounded(
        self, platform, system, n, ratio, pixels
    ):
        cost = CostModel(get_platform(platform))
        it = simulate_iteration(system, cost, n, ratio, pixels)
        assert it.time > 0
        # pipelining can hide stages but never create time from nothing:
        # total <= serial sum of the breakdown
        assert it.time <= sum(it.breakdown.values()) + 1e-12
        # and at least the forward/backward must be paid
        assert it.time >= it.breakdown["fwd_bwd"] - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(
        platform=st.sampled_from(PLATFORM_KEYS),
        n=st.integers(500_000, 20_000_000),
        r1=st.floats(0.01, 0.15),
        extra=st.floats(0.01, 0.14),
    )
    def test_gsscale_time_monotone_in_active_ratio(self, platform, n, r1, extra):
        cost = CostModel(get_platform(platform))
        t1 = simulate_iteration("gsscale", cost, n, r1, 1_000_000).time
        t2 = simulate_iteration("gsscale", cost, n, r1 + extra, 1_000_000).time
        assert t2 >= t1 - 1e-12


class TestMemoryInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1_000, 50_000_000),
        pixels=st.integers(0, 10_000_000),
        peak=st.floats(0.001, 1.0),
    )
    def test_gsscale_never_exceeds_gpu_only(self, n, pixels, peak):
        gpu = gpu_only_breakdown(n, pixels)
        gs = gsscale_breakdown(n, pixels, peak, mem_limit=0.3)
        # transfer buffers are constant; for non-trivial scenes GS-Scale
        # must always be smaller
        if n >= 1_000_000:
            assert gs.total < gpu.total

    @settings(max_examples=40, deadline=None)
    @given(
        peak=st.floats(0.001, 1.0),
        limit=st.floats(0.05, 1.0),
    )
    def test_effective_staged_ratio_bounds(self, peak, limit):
        eff = effective_staged_ratio(peak, limit)
        assert 0 < eff <= min(peak, limit) + 1e-12
        # splitting preserves total work: eff * splits == peak
        if peak > limit:
            splits = int(np.ceil(peak / limit))
            assert eff * splits == pytest.approx(peak)


class TestEpochInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        views=st.integers(1, 50),
        n=st.integers(500_000, 5_000_000),
    )
    def test_epoch_time_additive_over_views(self, seed, views, n):
        rng = np.random.default_rng(seed)
        ratios = rng.uniform(0.02, 0.25, size=views)
        trace = WorkloadTrace("prop", n, ratios)
        plat = get_platform("desktop_4080s")
        res = simulate_epoch(plat, trace, "gsscale", 1_000_000)
        if res.oom:
            return
        cost = CostModel(plat)
        manual = sum(
            simulate_iteration("gsscale", cost, n, float(r), 1_000_000).time
            for r in ratios
        )
        assert res.seconds == pytest.approx(manual, rel=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(500_000, 3_000_000))
    def test_oom_iff_memory_model_says_so(self, seed, n):
        from repro.sim import fits, peak_memory

        rng = np.random.default_rng(seed)
        trace = WorkloadTrace("prop", n, rng.uniform(0.02, 0.3, size=5))
        plat = get_platform("laptop_4070m")
        res = simulate_epoch(plat, trace, "gpu_only", 2_000_000)
        expected = not fits(
            peak_memory("gpu_only", n, 2_000_000, trace.peak_ratio), plat.gpu
        )
        assert res.oom == expected
