"""Tests for device models and the GPU memory model."""

import pytest

from repro.gaussians import layout
from repro.sim import (
    MemoryTracker,
    PLATFORMS,
    baseline_offload_breakdown,
    bytes_per_gaussian,
    fits,
    get_platform,
    gpu_only_breakdown,
    gsscale_breakdown,
    max_trainable_gaussians,
)
from repro.sim.memory import effective_staged_ratio


class TestPlatforms:
    def test_table1_r_bw(self):
        """R_bw values from Table 1: 3.1 (laptop), 8.2 (desktop), 3.3 (server)."""
        assert get_platform("laptop_4070m").r_bw == pytest.approx(3.1, abs=0.05)
        assert get_platform("desktop_4080s").r_bw == pytest.approx(8.2, abs=0.05)
        assert get_platform("server_h100").r_bw == pytest.approx(3.3, abs=0.05)

    def test_section58_gpus_present(self):
        assert get_platform("desktop_4070s").r_bw == pytest.approx(5.6, abs=0.05)
        assert get_platform("desktop_4090").r_bw == pytest.approx(11.3, abs=0.05)

    def test_memory_sizes(self):
        assert get_platform("laptop_4070m").gpu.memory_bytes == 8 * 1024**3
        assert get_platform("desktop_4080s").gpu.memory_bytes == 16 * 1024**3
        assert get_platform("server_h100").gpu.memory_bytes == 80 * 1024**3

    def test_server_numa_derates_random_bw(self):
        server = get_platform("server_h100").cpu
        laptop = get_platform("laptop_4070m").cpu
        assert server.numa_nodes == 2
        # random-access fraction of sequential bw is lower on the server
        assert server.random_bw / server.mem_bw < laptop.random_bw / laptop.mem_bw

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("tpu_v9")

    def test_all_platforms_consistent(self):
        for p in PLATFORMS.values():
            assert p.gpu.mem_bw > p.cpu.mem_bw  # R_bw > 1 everywhere
            assert p.pcie_bw < p.cpu.mem_bw


class TestBreakdowns:
    def test_gpu_only_state_is_4x_params(self):
        b = gpu_only_breakdown(1_000_000, 0)
        assert b.gaussian_state == 4 * layout.param_bytes(1_000_000)
        assert b.gradients == b.parameters
        assert b.optimizer_states == 2 * b.parameters

    def test_figure3b_shape(self):
        """Gaussian state ~90% at 1K for a 10M scene; activation share
        grows with resolution (Figure 3b)."""
        n = 10_000_000
        shares = {}
        for label, px in (("1K", 1_000_000), ("2K", 2_200_000), ("4K", 8_300_000)):
            b = gpu_only_breakdown(n, px)
            shares[label] = b.shares()["activations"]
        assert shares["1K"] < 0.15
        assert shares["1K"] < shares["2K"] < shares["4K"]
        assert gpu_only_breakdown(n, 1_000_000).gaussian_state / gpu_only_breakdown(
            n, 1_000_000
        ).total > 0.85

    def test_gsscale_keeps_17pct_geometric(self):
        n = 1_000_000
        b = gsscale_breakdown(n, 0, peak_active_ratio=0.0)
        g = gpu_only_breakdown(n, 0)
        resident = b.gaussian_state / g.gaussian_state
        assert resident == pytest.approx(layout.GEOMETRIC_FRACTION, abs=0.01)

    def test_baseline_scales_with_peak_ratio(self):
        n = 1_000_000
        lo = baseline_offload_breakdown(n, 0, 0.1)
        hi = baseline_offload_breakdown(n, 0, 0.3)
        assert hi.gaussian_state == pytest.approx(3 * lo.gaussian_state, rel=0.01)

    def test_effective_staged_ratio_splitting(self):
        assert effective_staged_ratio(0.2, 0.3) == 0.2  # no split
        assert effective_staged_ratio(0.32, 0.3) == pytest.approx(0.16)
        assert effective_staged_ratio(0.32, 0.1) == pytest.approx(0.08)

    def test_bytes_per_gaussian_ordering(self):
        go = bytes_per_gaussian("gpu_only")
        gs = bytes_per_gaussian("gsscale", peak_active_ratio=0.32)
        assert go == 944.0
        assert gs < go / 3  # the headline 3.3-5.6x state saving
        with pytest.raises(ValueError):
            bytes_per_gaussian("mystery")


class TestMaxTrainable:
    def test_paper_anchors(self):
        """Section 5.6: laptop 4M -> 18M; desktop 9M -> 40M."""
        px = 1152 * 864  # Rubble resolution
        laptop = get_platform("laptop_4070m").gpu
        desktop = get_platform("desktop_4080s").gpu
        assert max_trainable_gaussians(laptop, px, "gpu_only") == pytest.approx(
            4e6, rel=0.25
        )
        assert max_trainable_gaussians(
            laptop, px, "gsscale", peak_active_ratio=0.32
        ) == pytest.approx(18e6, rel=0.25)
        assert max_trainable_gaussians(desktop, px, "gpu_only") == pytest.approx(
            9e6, rel=0.3
        )
        assert max_trainable_gaussians(
            desktop, px, "gsscale", peak_active_ratio=0.32
        ) == pytest.approx(40e6, rel=0.25)

    def test_zero_when_activations_exceed_budget(self):
        tiny = get_platform("laptop_4070m").gpu
        assert max_trainable_gaussians(tiny, 10_000_000_000, "gpu_only") == 0

    def test_fits_matches_max(self):
        gpu = get_platform("laptop_4070m").gpu
        px = 1_000_000
        n_max = max_trainable_gaussians(gpu, px, "gpu_only")
        assert fits(gpu_only_breakdown(n_max, px), gpu)
        assert not fits(gpu_only_breakdown(int(n_max * 1.1), px), gpu)


class TestMemoryTracker:
    def test_peak_tracking(self):
        t = MemoryTracker()
        t.allocate("params", 100)
        t.allocate("act", 50)
        t.free("act", 50)
        t.allocate("act", 20)
        assert t.live_bytes == 120
        assert t.peak_bytes == 150

    def test_capacity_enforced(self):
        t = MemoryTracker(capacity_bytes=100)
        t.allocate("a", 80)
        with pytest.raises(MemoryError):
            t.allocate("b", 30)

    def test_over_free_rejected(self):
        t = MemoryTracker()
        t.allocate("a", 10)
        with pytest.raises(ValueError):
            t.free("a", 20)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().allocate("a", -1)

    def test_category_snapshot(self):
        t = MemoryTracker()
        t.allocate("x", 5)
        t.allocate("y", 7)
        assert t.live_by_category() == {"x": 5, "y": 7}
