"""Tests for replaying functional training runs through the cost model."""

import numpy as np
import pytest

from repro.core import GSScaleConfig, Trainer
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.sim import get_platform
from repro.sim.replay import ReplayEstimate, replay_history


@pytest.fixture(scope="module")
def history_and_scene():
    scene = build_scene(
        SyntheticSceneConfig(
            num_points=150, width=24, height=18,
            num_train_cameras=3, num_test_cameras=1,
            altitude=9.0, seed=91,
        )
    )
    trainer = Trainer(
        scene.initial.copy(),
        GSScaleConfig(
            system="gsscale", scene_extent=scene.extent,
            ssim_lambda=0.0, mem_limit=1.0, seed=0,
        ),
    )
    history = trainer.train(scene.train_cameras, scene.train_images, 6)
    return history, scene, trainer


class TestReplay:
    def test_basic_estimate(self, history_and_scene):
        history, scene, trainer = history_and_scene
        est = replay_history(
            history,
            get_platform("laptop_4070m"),
            "gsscale",
            num_gaussians=trainer.num_gaussians,
            num_pixels=scene.train_cameras[0].num_pixels,
        )
        assert isinstance(est, ReplayEstimate)
        assert est.seconds > 0
        assert est.images_per_second == pytest.approx(6 / est.seconds)
        assert est.breakdown["fwd_bwd"] > 0

    def test_system_comparison_preserved(self):
        """Replaying a paper-scale workload under each schedule reproduces
        the Figure-11 ordering."""
        from repro.core.systems import StepReport
        from repro.core.trainer import TrainingHistory

        history = TrainingHistory()
        for i, visible in enumerate((440_000, 430_000, 450_000)):
            history.steps.append(
                StepReport(
                    iteration=i + 1, loss=0.1, l1=0.1, ssim=0.9,
                    num_visible=visible, num_regions=1,
                    valid_ids=np.empty(0, dtype=np.int64),
                    mean2d_abs=np.empty(0),
                )
            )
        plat = get_platform("laptop_4070m")
        times = {
            s: replay_history(
                history, plat, s,
                num_gaussians=3_500_000, num_pixels=995_328,
            ).seconds
            for s in ("baseline_offload", "gsscale_no_deferred", "gsscale")
        }
        assert times["baseline_offload"] > times["gsscale_no_deferred"]
        assert times["gsscale_no_deferred"] > times["gsscale"]

    def test_platform_scaling(self, history_and_scene):
        """The same workload runs faster on the server than the laptop."""
        history, scene, trainer = history_and_scene
        kw = dict(
            num_gaussians=trainer.num_gaussians,
            num_pixels=scene.train_cameras[0].num_pixels,
        )
        lap = replay_history(history, get_platform("laptop_4070m"),
                             "gsscale", **kw)
        srv = replay_history(history, get_platform("server_h100"),
                             "gsscale", **kw)
        assert srv.seconds < lap.seconds

    def test_empty_history_rejected(self):
        from repro.core.trainer import TrainingHistory

        with pytest.raises(ValueError):
            replay_history(
                TrainingHistory(), get_platform("laptop_4070m"),
                "gsscale", 100, 100,
            )
