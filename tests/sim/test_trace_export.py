"""Tests for the Chrome-trace exporter and ASCII timeline rendering."""

import json

import pytest

from repro.sim import (
    CostModel,
    get_platform,
    render_ascii,
    simulate_iteration,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim.timeline import Segment


@pytest.fixture
def segments():
    cost = CostModel(get_platform("laptop_4070m"))
    it = simulate_iteration("gsscale", cost, 3_500_000, 0.126, 995_328)
    return it.segments


class TestChromeTrace:
    def test_structure(self, segments):
        trace = to_chrome_trace(segments)
        assert "traceEvents" in trace
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 3  # CPU, GPU, PCIe thread names
        assert len(spans) == len(segments)
        for e in spans:
            assert e["dur"] > 0
            assert e["ts"] >= 0

    def test_json_serializable(self, segments, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(segments, path)
        with open(path) as f:
            loaded = json.load(f)
        assert loaded["displayTimeUnit"] == "ms"

    def test_resource_to_tid_mapping(self):
        segs = [Segment("CPU", "a", 0.0, 1.0), Segment("GPU", "b", 0.0, 1.0)]
        trace = to_chrome_trace(segs)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in spans}
        assert tids["a"] != tids["b"]


class TestAsciiRendering:
    def test_contains_all_resources(self, segments):
        art = render_ascii(segments)
        for res in ("CPU", "GPU", "PCIe"):
            assert res in art
        assert "total" in art

    def test_empty(self):
        assert "empty" in render_ascii([])

    def test_width_respected(self, segments):
        art = render_ascii(segments, width=40)
        for line in art.splitlines():
            if "|" in line:
                bar = line.split("|")[1]
                assert len(bar) <= 40

    def test_durations_labelled(self, segments):
        art = render_ascii(segments)
        assert "ms]" in art
