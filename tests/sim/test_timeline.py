"""Tests for the cost model and timeline simulator, including the
paper-anchor calibration bands that every figure bench depends on."""

import pytest

from repro.datasets import all_scenes, get_scene, synthesize_trace
from repro.sim import (
    CostModel,
    geomean,
    get_platform,
    peak_memory,
    simulate_epoch,
    simulate_iteration,
)


def small_traces(seed=1, views=150):
    out = []
    for spec in all_scenes():
        if spec.small_total_gaussians is None:
            continue
        out.append(
            (spec, synthesize_trace(spec, num_views=views, seed=seed, use_small=True))
        )
    return out


class TestCostModel:
    def setup_method(self):
        self.cost = CostModel(get_platform("laptop_4070m"))

    def test_gpu_cull_much_faster_than_cpu(self):
        """Challenge 1: culling on CPU is dramatically slower."""
        n = 3_500_000
        assert self.cost.cpu_cull(n) > 20 * self.cost.gpu_cull(n)

    def test_cpu_dense_update_slower_than_gpu(self):
        """Challenge 2: CPU dense Adam is bandwidth-starved."""
        n = 3_500_000
        assert self.cost.cpu_dense_update(n) > 3 * self.cost.gpu_dense_update(n)

    def test_deferred_update_tracks_active_rows(self):
        n = 3_500_000
        t_small = self.cost.cpu_deferred_update(100_000, n)
        t_large = self.cost.cpu_deferred_update(1_000_000, n)
        assert t_large > 5 * t_small

    def test_deferred_beats_dense_at_paper_ratio(self):
        """At 8.3% active, the deferred update must be much cheaper even
        at random-access bandwidth."""
        n = 10_000_000
        n_upd = int(n * 0.083 + n / 15)
        assert self.cost.cpu_deferred_update(n_upd, n) < 0.4 * (
            self.cost.cpu_dense_update(n, 49)
        )

    def test_transfer_chunking(self):
        t1 = self.cost.transfer(1)  # one chunk's latency dominates
        t2 = self.cost.transfer(64 * 1024 * 1024)
        assert t2 > t1
        assert self.cost.transfer(0) == 0.0

    def test_monotone_in_workload(self):
        assert self.cost.forward_backward(200_000, 1_000_000) > (
            self.cost.forward_backward(100_000, 1_000_000)
        )


class TestIterationSchedules:
    def setup_method(self):
        self.cost = CostModel(get_platform("laptop_4070m"))
        self.kw = dict(
            n_total=3_500_000, active_ratio=0.126, num_pixels=995_328
        )

    def test_pipeline_never_beats_slowest_leg(self):
        it = simulate_iteration("gsscale", self.cost, **self.kw)
        legs_lower_bound = max(
            it.breakdown["fwd_bwd"], it.breakdown["optimizer"] * 0
        )
        assert it.time >= legs_lower_bound

    def test_pipeline_never_exceeds_serial_sum(self):
        pipelined = simulate_iteration("gsscale_no_deferred", self.cost, **self.kw)
        serial_sum = sum(pipelined.breakdown.values())
        assert pipelined.time <= serial_sum + 1e-9

    def test_baseline_is_serial(self):
        it = simulate_iteration("baseline_offload", self.cost, **self.kw)
        assert it.time == pytest.approx(sum(it.breakdown.values()), rel=1e-9)

    def test_system_ordering_on_laptop(self):
        """baseline > w/o deferred > full GS-Scale in iteration time."""
        t = {
            s: simulate_iteration(s, self.cost, **self.kw).time
            for s in ("baseline_offload", "gsscale_no_deferred", "gsscale")
        }
        assert t["baseline_offload"] > t["gsscale_no_deferred"] > t["gsscale"]

    def test_unknown_system_raises(self):
        with pytest.raises(ValueError):
            simulate_iteration("magic", self.cost, **self.kw)

    def test_image_splitting_adds_overhead(self):
        fast = simulate_iteration(
            "gsscale", self.cost, n_total=3_500_000, active_ratio=0.29,
            num_pixels=995_328, mem_limit=0.3,
        )
        split = simulate_iteration(
            "gsscale", self.cost, n_total=3_500_000, active_ratio=0.29,
            num_pixels=995_328, mem_limit=0.1,
        )
        assert split.time > fast.time

    def test_segments_cover_resources(self):
        it = simulate_iteration("gsscale", self.cost, **self.kw)
        resources = {s.resource for s in it.segments}
        assert resources == {"CPU", "GPU", "PCIe"}
        for s in it.segments:
            assert s.end >= s.start


class TestPaperCalibration:
    """The coarse quantitative anchors from the paper's evaluation.

    These bands gate every figure bench: if a refactor breaks the model,
    these tests fail before the benches silently drift.
    """

    def test_baseline_about_4x_slower_than_gpu_only(self):
        """Section 4.1: 'around 4x slower than GPU-only training'."""
        for pk in ("laptop_4070m", "desktop_4080s"):
            plat = get_platform(pk)
            ratios = []
            for spec, tr in small_traces():
                g = simulate_epoch(plat, tr, "gpu_only", spec.num_pixels)
                b = simulate_epoch(plat, tr, "baseline_offload", spec.num_pixels)
                if g.oom or b.oom:
                    continue
                ratios.append(b.seconds / g.seconds)
            assert 3.0 <= geomean(ratios) <= 6.0

    def test_laptop_gsscale_beats_gpu_only(self):
        """Section 5.3: geomean 1.22x of GPU-only on the laptop."""
        plat = get_platform("laptop_4070m")
        ratios = []
        for spec, tr in small_traces():
            g = simulate_epoch(plat, tr, "gpu_only", spec.num_pixels)
            s = simulate_epoch(plat, tr, "gsscale", spec.num_pixels)
            if g.oom:
                continue
            ratios.append(g.seconds / s.seconds)
        assert 1.05 <= geomean(ratios) <= 1.6

    def test_desktop_gsscale_slightly_slower(self):
        """Section 5.3: geomean 0.84x of GPU-only on the desktop."""
        plat = get_platform("desktop_4080s")
        ratios = []
        for spec, tr in small_traces():
            g = simulate_epoch(plat, tr, "gpu_only", spec.num_pixels)
            s = simulate_epoch(plat, tr, "gsscale", spec.num_pixels)
            if g.oom:
                continue
            ratios.append(g.seconds / s.seconds)
        assert 0.65 <= geomean(ratios) <= 0.95

    def test_optimizations_speedup_over_baseline(self):
        """Section 5.4: geomean 4.47x (laptop) / 4.57x (desktop)."""
        for pk in ("laptop_4070m", "desktop_4080s"):
            plat = get_platform(pk)
            speedups = []
            for spec, tr in small_traces():
                b = simulate_epoch(plat, tr, "baseline_offload", spec.num_pixels)
                s = simulate_epoch(plat, tr, "gsscale", spec.num_pixels)
                if b.oom:
                    continue
                speedups.append(b.seconds / s.seconds)
            assert 3.5 <= geomean(speedups) <= 7.0

    def test_memory_savings_band(self):
        """Section 5.2 / Figure 12: 3.3-5.6x savings, geomean 3.98x."""
        savings = []
        for spec in all_scenes():
            tr = synthesize_trace(spec, num_views=50, seed=1)
            g = peak_memory(
                "gpu_only", spec.total_gaussians, spec.num_pixels, tr.peak_ratio
            ).total
            s = peak_memory(
                "gsscale", spec.total_gaussians, spec.num_pixels, tr.peak_ratio
            ).total
            savings.append(g / s)
        assert 3.0 <= geomean(savings) <= 5.0
        assert max(savings) == savings[-1]  # Aerial saves the most (Fig 12)

    def test_aerial_ooms_on_gpu_only_everywhere(self):
        """Section 5.3: Aerial cannot train GPU-only even on the desktop,
        but GS-Scale fits it on the 4080S."""
        spec = get_scene("aerial")
        tr = synthesize_trace(spec, num_views=50, seed=1)
        for pk in ("laptop_4070m", "desktop_4080s"):
            res = simulate_epoch(get_platform(pk), tr, "gpu_only", spec.num_pixels)
            assert res.oom
        fit = simulate_epoch(
            get_platform("desktop_4080s"), tr, "gsscale", spec.num_pixels
        )
        assert not fit.oom

    def test_server_normalized_below_laptop(self):
        """Section 5.7: despite similar R_bw, NUMA makes the server's
        normalized throughput lower than the laptop's."""
        lap, srv = get_platform("laptop_4070m"), get_platform("server_h100")
        lap_r, srv_r = [], []
        for spec, tr in small_traces():
            gl = simulate_epoch(lap, tr, "gpu_only", spec.num_pixels)
            sl = simulate_epoch(lap, tr, "gsscale", spec.num_pixels)
            gs = simulate_epoch(srv, tr, "gpu_only", spec.num_pixels)
            ss = simulate_epoch(srv, tr, "gsscale", spec.num_pixels)
            if gl.oom or gs.oom:
                continue
            lap_r.append(gl.seconds / sl.seconds)
            srv_r.append(gs.seconds / ss.seconds)
        assert geomean(srv_r) < geomean(lap_r)

    def test_gpu_sensitivity_monotone_in_r_bw(self):
        """Figure 15c: higher R_bw -> lower normalized GS-Scale throughput."""
        spec = get_scene("lfls")
        tr = synthesize_trace(spec, num_views=150, seed=1, use_small=True)
        ratios = []
        for pk in ("desktop_4070s", "desktop_4080s", "desktop_4090"):
            plat = get_platform(pk)
            g = simulate_epoch(plat, tr, "gpu_only", spec.num_pixels)
            s = simulate_epoch(plat, tr, "gsscale", spec.num_pixels)
            assert not g.oom
            ratios.append(g.seconds / s.seconds)
        assert ratios[0] > ratios[1] > ratios[2]

    def test_resolution_sensitivity(self):
        """Figure 16: higher resolution -> higher relative GS-Scale
        throughput (more GPU slack) and lower relative memory saving."""
        plat = get_platform("desktop_4080s")
        spec = get_scene("rubble")
        tr = synthesize_trace(spec, num_views=100, seed=1, use_small=True)
        rel_tp = {}
        for label, px in (("1K", 1_000_000), ("4K", 8_300_000)):
            g = simulate_epoch(plat, tr, "gpu_only", px)
            s = simulate_epoch(plat, tr, "gsscale", px)
            rel_tp[label] = g.seconds / s.seconds
        assert rel_tp["4K"] > rel_tp["1K"]

    def test_mem_limit_tradeoff(self):
        """Figure 15a/b: smaller mem_limit -> less memory, lower throughput."""
        plat = get_platform("desktop_4080s")
        spec = get_scene("rubble")
        tr = synthesize_trace(spec, num_views=100, seed=1)
        mems, tps = [], []
        for ml in (0.3, 0.2, 0.1):
            r = simulate_epoch(plat, tr, "gsscale", spec.num_pixels, mem_limit=ml)
            mems.append(r.peak_memory_bytes)
            tps.append(r.images_per_second)
        assert mems[0] > mems[1] > mems[2]
        assert tps[0] >= tps[1] >= tps[2]


class TestEpochResult:
    def test_images_per_second(self):
        plat = get_platform("laptop_4070m")
        spec = get_scene("rubble")
        tr = synthesize_trace(spec, num_views=50, seed=2, use_small=True)
        res = simulate_epoch(plat, tr, "gsscale", spec.num_pixels)
        assert res.images_per_second == pytest.approx(50 / res.seconds)
        assert not res.oom
        assert res.peak_memory_bytes > 0

    def test_geomean_validation(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
