"""Tests for host-DRAM capacity modeling (the offloading's other wall)."""

import pytest

from repro.datasets import get_scene, synthesize_trace
from repro.gaussians import layout
from repro.sim import fits_host, get_platform, host_state_bytes, simulate_epoch


class TestHostStateBytes:
    def test_gpu_only_hosts_nothing(self):
        assert host_state_bytes(10_000_000, "gpu_only") == 0

    def test_baseline_hosts_everything(self):
        n = 1_000_000
        assert host_state_bytes(n, "baseline_offload") == (
            layout.train_state_bytes(n)
        )

    def test_gsscale_hosts_non_geometric_plus_counters(self):
        n = 1_000_000
        expected = layout.train_state_bytes(n, layout.NON_GEOMETRIC_DIM) + n
        assert host_state_bytes(n, "gsscale") == expected
        assert host_state_bytes(n, "gsscale") < host_state_bytes(
            n, "baseline_offload"
        )

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            host_state_bytes(1, "cloud_tpu")


class TestFitsHost:
    def test_aerial_exceeds_laptop_dram(self):
        """45M Gaussians -> ~35 GB of offloaded state: too much for the
        laptop's 32 GB of host memory, fine for the desktop's 64 GB."""
        spec = get_scene("aerial")
        laptop = get_platform("laptop_4070m")
        desktop = get_platform("desktop_4080s")
        assert not fits_host(
            spec.total_gaussians, "gsscale", laptop.host_memory_bytes
        )
        assert fits_host(
            spec.total_gaussians, "gsscale", desktop.host_memory_bytes
        )

    def test_rubble_fits_laptop(self):
        spec = get_scene("rubble")
        laptop = get_platform("laptop_4070m")
        assert fits_host(
            spec.total_gaussians, "gsscale", laptop.host_memory_bytes
        )

    def test_epoch_sim_reports_host_oom(self):
        spec = get_scene("aerial")
        trace = synthesize_trace(spec, num_views=20, seed=0)
        res = simulate_epoch(
            get_platform("laptop_4070m"), trace, "gsscale", spec.num_pixels
        )
        assert res.oom
        assert res.host_oom

    def test_desktop_aerial_no_host_oom(self):
        spec = get_scene("aerial")
        trace = synthesize_trace(spec, num_views=20, seed=0)
        res = simulate_epoch(
            get_platform("desktop_4080s"), trace, "gsscale", spec.num_pixels
        )
        assert not res.oom
        assert not res.host_oom

    def test_server_hosts_everything(self):
        for key in ("rubble", "aerial"):
            spec = get_scene(key)
            assert fits_host(
                spec.total_gaussians,
                "gsscale",
                get_platform("server_h100").host_memory_bytes,
            )
