"""Patch-farm schedule model: makespan bounds, packing, memory."""

import pytest

from repro.sim import get_platform, simulate_patch_farm

PLATFORM = get_platform("laptop_4070m")
SIZES = [30_000, 24_000, 18_000, 12_000]
PIXELS = 640 * 360


def farm(sizes=SIZES, jobs=2, **kwargs):
    defaults = dict(iterations=100, num_pixels=PIXELS)
    defaults.update(kwargs)
    return simulate_patch_farm(PLATFORM, sizes, jobs, **defaults)


class TestSchedule:
    def test_makespan_bounds(self):
        result = farm(jobs=2)
        total = sum(result.patch_seconds)
        assert max(result.patch_seconds) <= result.makespan_seconds <= total

    def test_single_job_serializes(self):
        result = farm(jobs=1)
        assert result.makespan_seconds == pytest.approx(
            sum(result.patch_seconds)
        )
        assert set(result.assignments) == {0}

    def test_more_jobs_never_slower(self):
        one = farm(jobs=1)
        two = farm(jobs=2)
        four = farm(jobs=4)
        assert two.makespan_seconds <= one.makespan_seconds
        assert four.makespan_seconds <= two.makespan_seconds

    def test_empty_patches_cost_nothing(self):
        result = farm(sizes=[20_000, 0, 15_000, 0], jobs=2)
        assert result.assignments[1] == result.assignments[3] == -1
        assert result.patch_seconds[1] == result.patch_seconds[3] == 0.0
        busy = [a for a in result.assignments if a >= 0]
        assert len(busy) == 2

    def test_every_nonempty_patch_assigned(self):
        result = farm(jobs=3)
        assert all(0 <= a < 3 for a in result.assignments)


class TestMemoryModel:
    def test_farm_peak_below_monolithic(self):
        result = farm(jobs=2)
        assert result.peak_host_bytes < result.monolithic_peak_host_bytes

    def test_all_jobs_at_once_matches_monolithic(self):
        """With every patch resident simultaneously and no overlap, the
        farm's peak equals the monolithic training state."""
        result = farm(jobs=len(SIZES))
        assert result.peak_host_bytes == result.monolithic_peak_host_bytes

    def test_peak_counts_largest_concurrent_patches(self):
        one = farm(jobs=1)
        two = farm(jobs=2)
        assert one.peak_host_bytes < two.peak_host_bytes


class TestValidation:
    def test_bad_jobs(self):
        with pytest.raises(ValueError):
            farm(jobs=0)

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            farm(iterations=-1)

    def test_zero_iterations_zero_time(self):
        result = farm(iterations=0)
        assert result.makespan_seconds == 0.0
        assert result.monolithic_seconds == 0.0


def test_speedup_grows_with_jobs():
    """The quantity the farm exists for: packing patches over more jobs
    shrinks wall clock relative to the monolith."""
    speedups = [farm(jobs=j).speedup for j in (1, 2, 4)]
    assert speedups == sorted(speedups)
