"""Serving-timeline tests: queueing behavior of the modeled render farm."""

import numpy as np
import pytest

from repro.sim import ServeScenario, get_platform, request_arrivals, simulate_serve

N_TOTAL = 2_000_000
ACTIVE = 0.1
PIXELS = 256 * 256


@pytest.fixture(scope="module")
def platform():
    return get_platform("desktop_4090")


def run(platform, **overrides):
    scenario = ServeScenario(
        num_requests=300, arrival_rate_hz=500.0, **overrides
    )
    return simulate_serve(platform, N_TOTAL, ACTIVE, PIXELS, scenario)


class TestArrivals:
    def test_poisson_trace_shape(self):
        arrivals = request_arrivals(100.0, 500, seed=3)
        assert arrivals.shape == (500,)
        assert np.all(np.diff(arrivals) >= 0)
        # mean gap ~ 1/rate
        assert np.mean(np.diff(arrivals)) == pytest.approx(0.01, rel=0.3)

    def test_deterministic_in_seed(self):
        assert np.array_equal(
            request_arrivals(50.0, 100, seed=1), request_arrivals(50.0, 100, seed=1)
        )


class TestQueueing:
    def test_latency_percentiles_ordered(self, platform):
        result = run(platform, workers=1)
        assert 0.0 < result.p50_latency_s <= result.p99_latency_s
        assert result.seconds > 0
        assert 0.0 < result.worker_utilization <= 1.0

    def test_more_workers_cut_tail_latency(self, platform):
        one = run(platform, workers=1)
        four = run(platform, workers=4)
        assert four.p99_latency_s < one.p99_latency_s
        assert four.requests_per_s >= one.requests_per_s

    def test_cache_hits_cut_median_latency(self, platform):
        cold = run(platform, workers=2, cache_hit_rate=0.0)
        warm = run(platform, workers=2, cache_hit_rate=0.8)
        assert warm.p50_latency_s < cold.p50_latency_s
        assert warm.cache_hits + warm.rendered == 300
        assert warm.cache_hits > 0

    def test_lod_reduction_speeds_renders(self, platform):
        full = run(platform, workers=1)
        lod = run(platform, workers=1, keep_fraction=0.25)
        assert lod.render_s < full.render_s
        assert lod.requests_per_s >= full.requests_per_s

    def test_paging_adds_stall(self, platform):
        paged = run(platform, workers=2, page_stall_prob=0.5)
        clean = run(platform, workers=2)
        assert paged.page_stall_s > 0.0
        assert clean.page_stall_s == 0.0
        assert paged.p99_latency_s > clean.p99_latency_s

    def test_deterministic(self, platform):
        a = run(platform, workers=2, cache_hit_rate=0.3, seed=7)
        b = run(platform, workers=2, cache_hit_rate=0.3, seed=7)
        assert a == b

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            ServeScenario(workers=0)
        with pytest.raises(ValueError):
            ServeScenario(cache_hit_rate=1.5)
        with pytest.raises(ValueError):
            ServeScenario(keep_fraction=0.0)
        with pytest.raises(ValueError):
            ServeScenario(arrival_rate_hz=0.0)
