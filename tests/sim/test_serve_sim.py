"""Serving-timeline tests: queueing behavior of the modeled render farm."""

import numpy as np
import pytest

from repro.sim import ServeScenario, get_platform, request_arrivals, simulate_serve

N_TOTAL = 2_000_000
ACTIVE = 0.1
PIXELS = 256 * 256


@pytest.fixture(scope="module")
def platform():
    return get_platform("desktop_4090")


def run(platform, **overrides):
    scenario = ServeScenario(
        num_requests=300, arrival_rate_hz=500.0, **overrides
    )
    return simulate_serve(platform, N_TOTAL, ACTIVE, PIXELS, scenario)


class TestArrivals:
    def test_poisson_trace_shape(self):
        arrivals = request_arrivals(100.0, 500, seed=3)
        assert arrivals.shape == (500,)
        assert np.all(np.diff(arrivals) >= 0)
        # mean gap ~ 1/rate
        assert np.mean(np.diff(arrivals)) == pytest.approx(0.01, rel=0.3)

    def test_deterministic_in_seed(self):
        assert np.array_equal(
            request_arrivals(50.0, 100, seed=1), request_arrivals(50.0, 100, seed=1)
        )


class TestQueueing:
    def test_latency_percentiles_ordered(self, platform):
        result = run(platform, workers=1)
        assert 0.0 < result.p50_latency_s <= result.p99_latency_s
        assert result.seconds > 0
        assert 0.0 < result.worker_utilization <= 1.0

    def test_more_workers_cut_tail_latency(self, platform):
        one = run(platform, workers=1)
        four = run(platform, workers=4)
        assert four.p99_latency_s < one.p99_latency_s
        assert four.requests_per_s >= one.requests_per_s

    def test_cache_hits_cut_median_latency(self, platform):
        cold = run(platform, workers=2, cache_hit_rate=0.0)
        warm = run(platform, workers=2, cache_hit_rate=0.8)
        assert warm.p50_latency_s < cold.p50_latency_s
        assert warm.cache_hits + warm.rendered == 300
        assert warm.cache_hits > 0

    def test_lod_reduction_speeds_renders(self, platform):
        full = run(platform, workers=1)
        lod = run(platform, workers=1, keep_fraction=0.25)
        assert lod.render_s < full.render_s
        assert lod.requests_per_s >= full.requests_per_s

    def test_paging_adds_stall(self, platform):
        paged = run(platform, workers=2, page_stall_prob=0.5)
        clean = run(platform, workers=2)
        assert paged.page_stall_s > 0.0
        assert clean.page_stall_s == 0.0
        assert paged.p99_latency_s > clean.p99_latency_s

    def test_deterministic(self, platform):
        a = run(platform, workers=2, cache_hit_rate=0.3, seed=7)
        b = run(platform, workers=2, cache_hit_rate=0.3, seed=7)
        assert a == b

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            ServeScenario(workers=0)
        with pytest.raises(ValueError):
            ServeScenario(cache_hit_rate=1.5)
        with pytest.raises(ValueError):
            ServeScenario(keep_fraction=0.0)
        with pytest.raises(ValueError):
            ServeScenario(arrival_rate_hz=0.0)


class TestFailureModel:
    """Failure-aware serving: MTBF retries and deadline shed/reject."""

    def test_clean_run_has_no_fault_costs(self, platform):
        clean = run(platform, workers=2)
        assert clean.failures == 0
        assert clean.retry_s == 0.0
        assert clean.rejected == 0
        assert clean.availability == 1.0
        assert clean.shed_fraction == 0.0

    def test_mtbf_failures_cost_throughput_not_frames(self, platform):
        clean = run(platform, workers=2)
        flaky = run(platform, workers=2, worker_mtbf_s=0.005)
        assert flaky.failures > 0
        assert flaky.retry_s > 0.0
        assert flaky.requests_per_s < clean.requests_per_s
        # the supervised pool's bounded retry still delivers every frame
        assert flaky.availability == 1.0

    def test_reject_policy_loses_frames(self, platform):
        rejecting = run(
            platform, workers=1, deadline_s=0.01, overload_policy="reject"
        )
        assert rejecting.rejected > 0
        assert rejecting.availability < 1.0
        total = rejecting.cache_hits + rejecting.rendered + rejecting.rejected
        assert total == 300

    def test_shed_beats_reject_on_delivered_fps(self, platform):
        # the chaos-tier claim: under overload, degrading late requests
        # to a coarse LOD delivers strictly more frames per second than
        # rejecting them — a cheap frame beats no frame
        reject = run(
            platform, workers=1, deadline_s=0.01, overload_policy="reject"
        )
        shed = run(
            platform, workers=1, deadline_s=0.01, overload_policy="shed"
        )
        assert shed.shed_fraction > 0.0
        assert shed.availability == 1.0
        assert shed.delivered_fps > reject.delivered_fps

    def test_failure_validation(self):
        with pytest.raises(ValueError):
            ServeScenario(overload_policy="drop")
        with pytest.raises(ValueError):
            ServeScenario(worker_mtbf_s=-1.0)
        with pytest.raises(ValueError):
            ServeScenario(shed_keep_fraction=0.0)
        with pytest.raises(ValueError):
            ServeScenario(deadline_s=-0.1)
        with pytest.raises(ValueError):
            ServeScenario(retry_penalty_s=-0.1)
