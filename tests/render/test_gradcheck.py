"""Numerical gradient verification of the full differentiable renderer.

These tests are the correctness anchor for everything downstream: the
GS-Scale offload engine moves gradients between host and device, so the
gradients themselves must be exact. All checks run in float64 with
``alpha_min=0`` (the skip threshold introduces measure-zero kinks that
break finite differencing but not training).
"""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.gaussians import GaussianModel, layout
from repro.render import RasterConfig, render, render_backward

CONFIG = RasterConfig(alpha_min=0.0, alpha_max=0.99, full_image_splats=True)


def make_scene(n=6, seed=0, spread=0.6):
    """A tiny random scene in front of a camera at the origin's -y side."""
    rng = np.random.default_rng(seed)
    means = rng.uniform(-spread, spread, size=(n, 3))
    log_scales = rng.uniform(np.log(0.05), np.log(0.25), size=(n, 3))
    quats = rng.normal(size=(n, 4))
    opacity_logits = rng.uniform(-1.0, 1.5, size=(n,))
    sh = rng.normal(size=(n, 16, 3)) * 0.2
    sh[:, 0, :] += rng.uniform(-0.5, 1.0, size=(n, 3))
    model = GaussianModel.from_attributes(
        means, log_scales, quats, opacity_logits, sh, dtype=np.float64
    )
    camera = Camera.look_at(
        [0.0, -3.0, 0.5], [0.0, 0.0, 0.0], width=24, height=20, fov_x_deg=55.0
    )
    return model, camera


def scalar_loss(model, camera, weights, background):
    res = render(model, camera, background=background, config=CONFIG)
    return float(np.sum(res.image * weights))


@pytest.fixture(scope="module")
def scene():
    model, camera = make_scene()
    rng = np.random.default_rng(99)
    weights = rng.normal(size=(camera.height, camera.width, 3))
    background = np.array([0.1, 0.2, 0.3])
    res = render(model, camera, background=background, config=CONFIG)
    back = render_backward(model, camera, res, weights)
    return model, camera, weights, background, res, back


ATTR_TOLERANCES = {
    "mean": 2e-5,
    "scale": 2e-5,
    "quat": 2e-5,
    "opacity": 2e-5,
    "sh": 2e-5,
}


@pytest.mark.parametrize("attr", list(ATTR_TOLERANCES))
def test_gradients_match_numerical(scene, attr):
    model, camera, weights, background, res, back = scene
    spec = layout.attribute(attr)
    ids = back.valid_ids
    assert ids.size > 0, "scene must have visible Gaussians"

    eps = 1e-6
    analytic = back.param_grads[:, spec.sl]
    numeric = np.zeros_like(analytic)
    for row, gid in enumerate(ids):
        for col in range(spec.width):
            j = spec.start + col
            orig = model.params[gid, j]
            model.params[gid, j] = orig + eps
            hi = scalar_loss(model, camera, weights, background)
            model.params[gid, j] = orig - eps
            lo = scalar_loss(model, camera, weights, background)
            model.params[gid, j] = orig
            numeric[row, col] = (hi - lo) / (2 * eps)

    scale = np.maximum(np.abs(numeric).max(), 1.0)
    np.testing.assert_allclose(
        analytic, numeric, atol=ATTR_TOLERANCES[attr] * scale
    )


def test_all_visible_gaussians_receive_rows(scene):
    _, _, _, _, res, back = scene
    assert back.param_grads.shape == (res.valid_ids.size, layout.PARAM_DIM)
    # at least one gradient entry per visible Gaussian should be nonzero
    assert np.all(np.any(back.param_grads != 0.0, axis=1))


def test_mean2d_abs_nonnegative(scene):
    _, _, _, _, _, back = scene
    assert np.all(back.mean2d_abs >= 0)
    assert np.any(back.mean2d_abs > 0)


def test_occluded_scene_gradcheck():
    """Two nearly coincident Gaussians exercise the blending backward."""
    means = np.array([[0.0, 0.0, 0.0], [0.05, 0.3, 0.02]])
    log_scales = np.log(np.full((2, 3), 0.3))
    quats = np.array([[1.0, 0.0, 0.0, 0.0], [0.9, 0.1, 0.2, 0.0]])
    opacity_logits = np.array([2.0, 2.0])  # high opacity: strong occlusion
    sh = np.zeros((2, 16, 3))
    sh[0, 0] = [1.0, -0.5, 0.3]
    sh[1, 0] = [-0.2, 0.8, 0.1]
    model = GaussianModel.from_attributes(
        means, log_scales, quats, opacity_logits, sh, dtype=np.float64
    )
    camera = Camera.look_at([0.0, -2.5, 0.0], [0.0, 0.0, 0.0], width=16, height=16)
    rng = np.random.default_rng(7)
    weights = rng.normal(size=(16, 16, 3))
    background = np.zeros(3)

    res = render(model, camera, background=background, config=CONFIG)
    back = render_backward(model, camera, res, weights)

    eps = 1e-6
    numeric = np.zeros_like(back.param_grads)
    for row, gid in enumerate(back.valid_ids):
        for j in range(layout.PARAM_DIM):
            orig = model.params[gid, j]
            model.params[gid, j] = orig + eps
            hi = scalar_loss(model, camera, weights, background)
            model.params[gid, j] = orig - eps
            lo = scalar_loss(model, camera, weights, background)
            model.params[gid, j] = orig
            numeric[row, j] = (hi - lo) / (2 * eps)

    scale = np.maximum(np.abs(numeric).max(), 1.0)
    np.testing.assert_allclose(back.param_grads, numeric, atol=3e-5 * scale)
