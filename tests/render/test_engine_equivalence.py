"""Cross-engine parity suite: reference vs tiled vs vectorized.

The loop engines are the oracle; the vectorized engine must reproduce the
image, the final transmittance, and all five gradient arrays to tight
absolute tolerance on randomized scenes — including the gradcheck
configurations (``alpha_min=0``, ``full_image_splats``) and the
image-splitting path of the GS-Scale system.
"""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import GaussianModel, layout
from repro.render import ENGINES, RasterConfig, render, render_backward
from repro.render.backward import rasterize_backward
from repro.render.engine import (
    get_backward,
    get_forward,
    rasterize_backward_vectorized,
    rasterize_vectorized,
)
from repro.render.rasterize import rasterize

ATOL = 1e-9


def make_splats(n, width, height, seed, opacity_lo=0.05):
    """Random anisotropic splats, many partially off-screen."""
    rng = np.random.default_rng(seed)
    means2d = rng.uniform([-6, -6], [width + 6, height + 6], size=(n, 2))
    sx = rng.uniform(0.8, 4.0, size=n)
    sy = rng.uniform(0.8, 4.0, size=n)
    theta = rng.uniform(0, np.pi, size=n)
    cth, sth = np.cos(theta), np.sin(theta)
    inv_a, inv_b = 1 / sx**2, 1 / sy**2
    conics = np.stack(
        [
            cth**2 * inv_a + sth**2 * inv_b,
            cth * sth * (inv_a - inv_b),
            sth**2 * inv_a + cth**2 * inv_b,
        ],
        axis=1,
    )
    colors = rng.uniform(0, 1, size=(n, 3))
    opacities = rng.uniform(opacity_lo, 1.0, size=n)
    depths = rng.uniform(1, 30, size=n)
    radii = 3 * np.maximum(sx, sy)
    return means2d, conics, colors, opacities, depths, radii


SCENES = [
    # (n, width, height, seed)
    (40, 32, 24, 0),
    (150, 70, 50, 1),
    (400, 96, 80, 2),
]

CONFIGS = [
    RasterConfig(),
    RasterConfig(alpha_min=0.0),
    RasterConfig(alpha_min=0.0, full_image_splats=True),
]


def _config_id(cfg):
    return f"amin{cfg.alpha_min:.3f}-full{int(cfg.full_image_splats)}"


class TestForwardParity:
    @pytest.mark.parametrize("scene", SCENES, ids=lambda s: f"n{s[0]}")
    @pytest.mark.parametrize("cfg", CONFIGS, ids=_config_id)
    @pytest.mark.parametrize("engine", ["tiled", "vectorized"])
    def test_image_and_transmittance(self, scene, cfg, engine):
        n, w, h, seed = scene
        if cfg.full_image_splats and n > 150:
            pytest.skip("full-image splats on large scenes are O(n * H * W)")
        args = make_splats(n, w, h, seed)
        bg = np.array([0.2, 0.4, 0.6])
        ref = rasterize(*args, width=w, height=h, background=bg, config=cfg)
        out = get_forward(engine)(
            *args, width=w, height=h, background=bg, config=cfg
        )
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)
        np.testing.assert_allclose(
            out.final_transmittance, ref.final_transmittance, atol=ATOL, rtol=0
        )
        np.testing.assert_array_equal(out.order, ref.order)
        np.testing.assert_array_equal(out.bboxes, ref.bboxes)

    @pytest.mark.parametrize("engine", ["tiled", "vectorized"])
    def test_no_background(self, engine):
        args = make_splats(60, 48, 40, 3)
        ref = rasterize(*args, width=48, height=40)
        out = get_forward(engine)(*args, width=48, height=40)
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)

    def test_empty_scene(self):
        res = rasterize_vectorized(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), np.zeros(0), np.zeros(0), 16, 12,
            background=np.array([0.1, 0.2, 0.3]),
        )
        np.testing.assert_allclose(res.image[:, :, 0], 0.1)
        np.testing.assert_allclose(res.final_transmittance, 1.0)

    def test_all_splats_offscreen(self):
        args = list(make_splats(10, 32, 32, 4))
        args[0] = args[0] + 500.0  # push every center far off-screen
        res = rasterize_vectorized(*args, width=32, height=32)
        np.testing.assert_allclose(res.image, 0.0)

    def test_single_splat(self):
        means2d = np.array([[8.0, 8.0]])
        conics = np.array([[1 / 16.0, 0.0, 1 / 16.0]])
        args = (
            means2d, conics, np.array([[1.0, 0.0, 0.0]]), np.array([0.7]),
            np.array([1.0]), np.array([12.0]),
        )
        ref = rasterize(*args, width=16, height=16)
        vec = rasterize_vectorized(*args, width=16, height=16)
        np.testing.assert_allclose(vec.image, ref.image, atol=ATOL, rtol=0)

    def test_alpha_max_one_rejected(self):
        args = make_splats(5, 16, 16, 5)
        with pytest.raises(ValueError, match="alpha_max"):
            rasterize_vectorized(
                *args, width=16, height=16,
                config=RasterConfig(alpha_max=1.0),
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown raster engine"):
            get_forward("bogus")
        with pytest.raises(ValueError, match="unknown raster engine"):
            get_backward("bogus")
        with pytest.raises(ValueError, match="unknown raster engine"):
            RasterConfig(engine="bogus")


class TestBackwardParity:
    @pytest.mark.parametrize("scene", SCENES, ids=lambda s: f"n{s[0]}")
    @pytest.mark.parametrize("cfg", CONFIGS, ids=_config_id)
    def test_all_gradient_arrays(self, scene, cfg):
        n, w, h, seed = scene
        if cfg.full_image_splats and n > 150:
            pytest.skip("full-image splats on large scenes are O(n * H * W)")
        args = make_splats(n, w, h, seed)
        bg = np.array([0.3, 0.1, 0.5])
        rng = np.random.default_rng(seed + 100)
        grad_image = rng.normal(size=(h, w, 3))
        ref_fwd = rasterize(*args, width=w, height=h, background=bg, config=cfg)
        vec_fwd = rasterize_vectorized(
            *args, width=w, height=h, background=bg, config=cfg
        )
        ref = rasterize_backward(
            args[0], args[1], args[2], args[3], ref_fwd, grad_image,
            background=bg, config=cfg,
        )
        vec = rasterize_backward_vectorized(
            args[0], args[1], args[2], args[3], vec_fwd, grad_image,
            background=bg, config=cfg,
        )
        for field in ("means2d", "conics", "colors", "opacities", "mean2d_abs"):
            np.testing.assert_allclose(
                getattr(vec, field), getattr(ref, field), atol=ATOL, rtol=0,
                err_msg=field,
            )

    def test_saturated_alpha_cap(self):
        """Gradient must vanish where the alpha cap binds, like the loop."""
        args = list(make_splats(30, 40, 40, 6))
        args[3] = np.ones(30)  # opacity 1 -> cap binds near centers
        ref_fwd = rasterize(*args, width=40, height=40)
        vec_fwd = rasterize_vectorized(*args, width=40, height=40)
        g = np.ones((40, 40, 3))
        ref = rasterize_backward(args[0], args[1], args[2], args[3], ref_fwd, g)
        vec = rasterize_backward_vectorized(
            args[0], args[1], args[2], args[3], vec_fwd, g
        )
        np.testing.assert_allclose(vec.opacities, ref.opacities, atol=ATOL, rtol=0)
        np.testing.assert_allclose(vec.means2d, ref.means2d, atol=ATOL, rtol=0)

    def test_empty_scene_grads(self):
        res = rasterize_vectorized(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), np.zeros(0), np.zeros(0), 8, 8,
        )
        grads = rasterize_backward_vectorized(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), res, np.ones((8, 8, 3)),
        )
        assert grads.means2d.shape == (0, 2)


def _tiny_model(seed=0, n=30):
    rng = np.random.default_rng(seed)
    means = rng.uniform(-0.6, 0.6, size=(n, 3))
    log_scales = rng.uniform(np.log(0.05), np.log(0.2), size=(n, 3))
    quats = rng.normal(size=(n, 4))
    opacity_logits = rng.uniform(-1.0, 1.5, size=n)
    sh = rng.normal(size=(n, 16, 3)) * 0.2
    return GaussianModel.from_attributes(
        means, log_scales, quats, opacity_logits, sh, dtype=np.float64
    )


class TestPipelineParity:
    """The three engines agree through the full render pipeline."""

    def test_render_and_backward(self):
        from repro.cameras import Camera

        model = _tiny_model()
        camera = Camera.look_at(
            [0.0, -3.0, 0.5], [0.0, 0.0, 0.0], width=48, height=36
        )
        bg = np.array([0.1, 0.2, 0.3])
        rng = np.random.default_rng(7)
        grad_image = rng.normal(size=(36, 48, 3))
        results = {}
        for engine in ENGINES:
            cfg = RasterConfig(engine=engine)
            res = render(model, camera, background=bg, config=cfg)
            back = render_backward(model, camera, res, grad_image)
            results[engine] = (res.image, back.param_grads, back.mean2d_abs)
        ref_img, ref_grads, ref_m2d = results["reference"]
        for engine in ("tiled", "vectorized"):
            img, grads, m2d = results[engine]
            np.testing.assert_allclose(img, ref_img, atol=ATOL, rtol=0)
            np.testing.assert_allclose(grads, ref_grads, atol=1e-8, rtol=0)
            np.testing.assert_allclose(m2d, ref_m2d, atol=1e-8, rtol=0)


class TestVectorizedGradcheck:
    """Numerical gradient check straight through the vectorized engine."""

    def test_means_match_numerical(self):
        from repro.cameras import Camera

        config = RasterConfig(
            alpha_min=0.0, full_image_splats=True, engine="vectorized"
        )
        model = _tiny_model(seed=3, n=5)
        camera = Camera.look_at(
            [0.0, -3.0, 0.5], [0.0, 0.0, 0.0], width=20, height=16
        )
        rng = np.random.default_rng(11)
        weights = rng.normal(size=(16, 20, 3))
        bg = np.array([0.1, 0.2, 0.3])

        res = render(model, camera, background=bg, config=config)
        back = render_backward(model, camera, res, weights)
        spec = layout.attribute("mean")
        analytic = back.param_grads[:, spec.sl]

        def loss():
            out = render(model, camera, background=bg, config=config)
            return float(np.sum(out.image * weights))

        eps = 1e-6
        numeric = np.zeros_like(analytic)
        for row, gid in enumerate(back.valid_ids):
            for col in range(spec.width):
                j = spec.start + col
                orig = model.params[gid, j]
                model.params[gid, j] = orig + eps
                hi = loss()
                model.params[gid, j] = orig - eps
                lo = loss()
                model.params[gid, j] = orig
                numeric[row, col] = (hi - lo) / (2 * eps)
        scale = np.maximum(np.abs(numeric).max(), 1.0)
        np.testing.assert_allclose(analytic, numeric, atol=2e-5 * scale)


class TestSystemParity:
    """GSScaleSystem trains identically (within fp tolerance) on every
    engine, including when balance-aware image splitting fires."""

    @pytest.fixture(scope="class")
    def scene(self):
        return build_scene(
            SyntheticSceneConfig(
                num_points=150, width=32, height=24,
                num_train_cameras=4, num_test_cameras=1,
                altitude=8.0, fov_x_deg=55.0, seed=77,
            )
        )

    def _run(self, scene, engine, mem_limit, iters=6):
        system = create_system(
            scene.initial.copy(),
            GSScaleConfig(
                system="gsscale", scene_extent=scene.extent,
                ssim_lambda=0.0, mem_limit=mem_limit, seed=0, engine=engine,
            ),
        )
        losses, regions = [], []
        for i in range(iters):
            rep = system.step(
                scene.train_cameras[i % 4], scene.train_images[i % 4]
            )
            losses.append(rep.loss)
            regions.append(rep.num_regions)
        system.finalize()
        return np.array(losses), regions, system.materialized_model().params

    @pytest.mark.parametrize("mem_limit", [1.0, 0.05], ids=["whole", "split"])
    def test_loss_trajectory_matches_reference(self, scene, mem_limit):
        ref_losses, ref_regions, ref_params = self._run(
            scene, "reference", mem_limit
        )
        for engine in ("tiled", "vectorized"):
            losses, regions, params = self._run(scene, engine, mem_limit)
            assert regions == ref_regions
            np.testing.assert_allclose(losses, ref_losses, atol=1e-9, rtol=0)
            # Adam divides by sqrt(v) + 1e-15, so a ~1e-15 gradient
            # difference on a near-zero coordinate flips the whole update
            # sign; isolated parameters may drift by O(lr) per step.
            np.testing.assert_allclose(params, ref_params, atol=2e-4, rtol=0)
        if mem_limit < 1.0:
            assert max(ref_regions) > 1, "split path must actually fire"

    def test_system_records_engine(self, scene):
        system = create_system(
            scene.initial.copy(),
            GSScaleConfig(
                system="gpu_only", scene_extent=scene.extent,
                engine="vectorized",
            ),
        )
        assert system.raster_engine == "vectorized"
        assert system.config.raster.engine == "vectorized"
