"""Tests for the tile-binned rasterizer: bitwise equivalence with the
reference compositor and binning statistics."""

import numpy as np
import pytest

from repro.render.rasterize import RasterConfig, rasterize
from repro.render.tiles import TILE_SIZE, bin_gaussians, rasterize_tiled


def make_splats(n=60, width=70, height=50, seed=0):
    rng = np.random.default_rng(seed)
    means2d = rng.uniform([-5, -5], [width + 5, height + 5], size=(n, 2))
    sig = rng.uniform(1.0, 6.0, size=n)
    conics = np.stack([1 / sig**2, np.zeros(n), 1 / sig**2], axis=1)
    colors = rng.uniform(0, 1, size=(n, 3))
    opacities = rng.uniform(0.1, 1.0, size=n)
    depths = rng.uniform(1, 20, size=n)
    radii = 3 * sig
    return means2d, conics, colors, opacities, depths, radii


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bitwise_identical_to_reference(self, seed):
        args = make_splats(seed=seed)
        bg = np.array([0.2, 0.4, 0.6])
        ref = rasterize(*args, width=70, height=50, background=bg)
        tiled = rasterize_tiled(*args, width=70, height=50, background=bg)
        np.testing.assert_array_equal(tiled.image, ref.image)
        np.testing.assert_array_equal(
            tiled.final_transmittance, ref.final_transmittance
        )

    def test_non_multiple_of_tile_size(self):
        """Image edges that don't align to the tile grid."""
        args = make_splats(width=33, height=17, seed=3)
        ref = rasterize(*args, width=33, height=17)
        tiled = rasterize_tiled(*args, width=33, height=17)
        np.testing.assert_array_equal(tiled.image, ref.image)

    def test_alpha_min_zero_config(self):
        args = make_splats(seed=4)
        cfg = RasterConfig(alpha_min=0.0)
        ref = rasterize(*args, width=70, height=50, config=cfg)
        tiled = rasterize_tiled(*args, width=70, height=50, config=cfg)
        np.testing.assert_array_equal(tiled.image, ref.image)

    def test_custom_tile_size(self):
        args = make_splats(seed=5)
        ref = rasterize(*args, width=70, height=50)
        for ts in (8, 32):
            tiled = rasterize_tiled(*args, width=70, height=50, tile_size=ts)
            np.testing.assert_array_equal(tiled.image, ref.image)

    def test_empty_input(self):
        res = rasterize_tiled(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), np.zeros(0), np.zeros(0), 16, 16,
        )
        np.testing.assert_allclose(res.image, 0.0)

    def test_backward_compatible_output(self):
        """Existing backward pass works off a tiled forward result."""
        from repro.render.backward import rasterize_backward

        args = make_splats(n=20, seed=6)
        ref = rasterize(*args, width=70, height=50)
        tiled = rasterize_tiled(*args, width=70, height=50)
        g = np.ones((50, 70, 3))
        b_ref = rasterize_backward(args[0], args[1], args[2], args[3], ref, g)
        b_tiled = rasterize_backward(args[0], args[1], args[2], args[3], tiled, g)
        np.testing.assert_array_equal(b_tiled.means2d, b_ref.means2d)
        np.testing.assert_array_equal(b_tiled.colors, b_ref.colors)


class TestBinning:
    def test_small_splat_single_tile(self):
        means2d = np.array([[8.0, 8.0]])
        radii = np.array([2.0])
        b = bin_gaussians(means2d, radii, width=64, height=64)
        assert b.tiles_x == 4 and b.tiles_y == 4
        assert b.num_intersections == 1
        assert 0 in set(b.tile_lists[0])

    def test_large_splat_many_tiles(self):
        means2d = np.array([[32.0, 32.0]])
        radii = np.array([30.0])
        b = bin_gaussians(means2d, radii, width=64, height=64)
        assert b.num_intersections == 16  # covers all 4x4 tiles

    def test_offscreen_splat_unbinned(self):
        means2d = np.array([[-100.0, -100.0]])
        radii = np.array([2.0])
        b = bin_gaussians(means2d, radii, width=64, height=64)
        assert b.num_intersections == 0

    def test_intersections_grow_with_radius(self):
        rng = np.random.default_rng(7)
        means2d = rng.uniform(0, 64, size=(30, 2))
        small = bin_gaussians(means2d, np.full(30, 2.0), 64, 64)
        large = bin_gaussians(means2d, np.full(30, 20.0), 64, 64)
        assert large.num_intersections > small.num_intersections

    def test_default_tile_size_is_16(self):
        assert TILE_SIZE == 16

    def test_tile_lists_in_input_order(self):
        """The vectorized expansion must keep the legacy bucket order."""
        rng = np.random.default_rng(8)
        means2d = rng.uniform(0, 64, size=(40, 2))
        b = bin_gaussians(means2d, np.full(40, 10.0), 64, 64)
        for ids in b.tile_lists:
            assert np.all(np.diff(ids) > 0)  # strictly ascending input ids

    def test_binning_returns_bboxes(self):
        """Callers reuse the bboxes instead of recomputing them."""
        from repro.render.rasterize import splat_bboxes

        rng = np.random.default_rng(9)
        means2d = rng.uniform(0, 64, size=(20, 2))
        radii = rng.uniform(2.0, 8.0, size=20)
        b = bin_gaussians(means2d, radii, 64, 64)
        np.testing.assert_array_equal(
            b.bboxes, splat_bboxes(means2d, radii, 64, 64)
        )

    def test_num_intersections_matches_lists(self):
        rng = np.random.default_rng(10)
        means2d = rng.uniform(-10, 74, size=(50, 2))
        b = bin_gaussians(means2d, np.full(50, 6.0), 64, 48)
        assert b.num_intersections == sum(len(ids) for ids in b.tile_lists)

    def test_full_image_splats_config(self):
        """rasterize_tiled honors full_image_splats like the reference."""
        args = make_splats(n=15, seed=11)
        cfg = RasterConfig(alpha_min=0.0, full_image_splats=True)
        ref = rasterize(*args, width=70, height=50, config=cfg)
        tiled = rasterize_tiled(*args, width=70, height=50, config=cfg)
        np.testing.assert_array_equal(tiled.image, ref.image)
        np.testing.assert_array_equal(tiled.bboxes, ref.bboxes)
