"""Property-based tests (hypothesis) for the rasterizer's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.rasterize import RasterConfig, rasterize


def random_splats(rng, n, width, height):
    means2d = rng.uniform([-8, -8], [width + 8, height + 8], size=(n, 2))
    sig = rng.uniform(0.8, 6.0, size=n)
    conics = np.stack([1 / sig**2, np.zeros(n), 1 / sig**2], axis=1)
    colors = rng.uniform(0, 1, size=(n, 3))
    opacities = rng.uniform(0, 1, size=n)
    depths = rng.uniform(0.5, 30, size=n)
    radii = 3 * sig
    return means2d, conics, colors, opacities, depths, radii


class TestCompositingInvariants:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 40))
    def test_convex_combination_bound(self, seed, n):
        """With colors and background in [0,1], output stays in [0,1] and
        transmittance in [0,1] — compositing is a convex combination."""
        rng = np.random.default_rng(seed)
        args = random_splats(rng, n, 24, 20)
        bg = rng.uniform(0, 1, size=3)
        res = rasterize(*args, width=24, height=20, background=bg)
        assert res.image.min() >= -1e-12
        assert res.image.max() <= 1.0 + 1e-12
        assert res.final_transmittance.min() >= -1e-12
        assert res.final_transmittance.max() <= 1.0 + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
    def test_depth_order_invariance_of_inputs(self, seed, n):
        """Shuffling input rows (with depths attached) cannot change the
        image — only depth order matters."""
        rng = np.random.default_rng(seed)
        means2d, conics, colors, opacities, depths, radii = random_splats(
            rng, n, 20, 16
        )
        # make depths unique so the sort is unambiguous
        depths = depths + np.arange(n) * 1e-6
        perm = rng.permutation(n)
        a = rasterize(means2d, conics, colors, opacities, depths, radii, 20, 16)
        b = rasterize(
            means2d[perm], conics[perm], colors[perm], opacities[perm],
            depths[perm], radii[perm], 20, 16,
        )
        np.testing.assert_allclose(b.image, a.image, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_monochrome_scene_stays_monochrome(self, seed):
        """All-gray splats over a gray background give a gray image."""
        rng = np.random.default_rng(seed)
        means2d, conics, _, opacities, depths, radii = random_splats(
            rng, 15, 16, 16
        )
        gray = np.full((15, 3), 0.5)
        res = rasterize(
            means2d, conics, gray, opacities, depths, radii, 16, 16,
            background=np.full(3, 0.5),
        )
        np.testing.assert_allclose(res.image, 0.5, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 25))
    def test_transmittance_decreases_with_more_splats(self, seed, n):
        """Adding splats can only absorb more light."""
        rng = np.random.default_rng(seed)
        args = random_splats(rng, n, 16, 16)
        full = rasterize(*args, width=16, height=16)
        half_n = max(n // 2, 1)
        half = rasterize(
            *(a[:half_n] for a in args), width=16, height=16
        )
        assert np.all(
            full.final_transmittance <= half.final_transmittance + 1e-12
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_zero_opacity_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        means2d, conics, colors, _, depths, radii = random_splats(
            rng, 10, 16, 16
        )
        bg = rng.uniform(0, 1, size=3)
        res = rasterize(
            means2d, conics, colors, np.zeros(10), depths, radii, 16, 16,
            background=bg,
        )
        np.testing.assert_allclose(
            res.image, np.broadcast_to(bg, (16, 16, 3)), atol=1e-12
        )
        np.testing.assert_allclose(res.final_transmittance, 1.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_tiled_matches_reference(self, seed):
        """Cross-implementation property: the tile compositor agrees with
        the reference for arbitrary inputs."""
        from repro.render.tiles import rasterize_tiled

        rng = np.random.default_rng(seed)
        args = random_splats(rng, 20, 37, 23)
        ref = rasterize(*args, width=37, height=23)
        tiled = rasterize_tiled(*args, width=37, height=23)
        np.testing.assert_array_equal(tiled.image, ref.image)


class TestConfigProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), alpha_min=st.floats(0.0, 0.1))
    def test_alpha_min_only_removes_light(self, seed, alpha_min):
        """Raising the skip threshold can only reduce absorbed light."""
        rng = np.random.default_rng(seed)
        args = random_splats(rng, 15, 16, 16)
        lo = rasterize(
            *args, width=16, height=16, config=RasterConfig(alpha_min=0.0)
        )
        hi = rasterize(
            *args, width=16, height=16,
            config=RasterConfig(alpha_min=alpha_min),
        )
        assert np.all(
            hi.final_transmittance >= lo.final_transmittance - 1e-12
        )
