"""Property-based tests for the projection stage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cameras import Camera
from repro.render.projection import EPS_2D, project_geometry


def make_inputs(rng, n, z_range=(1.0, 20.0)):
    means = np.column_stack(
        [
            rng.uniform(-3, 3, size=n),
            rng.uniform(*z_range, size=n),  # along the camera's view (y)
            rng.uniform(-3, 3, size=n),
        ]
    )
    log_scales = rng.uniform(np.log(0.01), np.log(0.5), size=(n, 3))
    quats = rng.normal(size=(n, 4))
    return means, log_scales, quats


def front_camera():
    return Camera.look_at(
        [0.0, -1.0, 0.0], [0.0, 1.0, 0.0], width=64, height=48
    )


class TestProjectionProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
    def test_cov2d_positive_definite(self, seed, n):
        """The low-pass term guarantees a PSD 2D covariance for any
        in-front Gaussian."""
        rng = np.random.default_rng(seed)
        means, log_scales, quats = make_inputs(rng, n)
        geom, _ = project_geometry(means, log_scales, quats, front_camera())
        eigs = np.linalg.eigvalsh(geom.cov2d)
        assert np.all(eigs > 0)
        assert np.all(eigs.min(axis=1) >= EPS_2D * 0.5)
        assert geom.valid.all()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 20))
    def test_depths_match_camera_distance(self, seed, n):
        rng = np.random.default_rng(seed)
        means, log_scales, quats = make_inputs(rng, n)
        cam = front_camera()
        geom, _ = project_geometry(means, log_scales, quats, cam)
        expected = cam.world_to_cam(means)[:, 2]
        np.testing.assert_allclose(geom.depths, expected, rtol=1e-12)
        assert np.all(geom.depths > 0)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        scale_boost=st.floats(0.2, 2.0),
    )
    def test_radius_monotone_in_scale(self, seed, scale_boost):
        """Growing a Gaussian's world extent cannot shrink its splat."""
        rng = np.random.default_rng(seed)
        means, log_scales, quats = make_inputs(rng, 10)
        cam = front_camera()
        small, _ = project_geometry(means, log_scales, quats, cam)
        large, _ = project_geometry(
            means, log_scales + scale_boost, quats, cam
        )
        assert np.all(large.radii >= small.radii)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), shrink=st.floats(1.5, 4.0))
    def test_farther_gaussians_project_smaller(self, seed, shrink):
        """Perspective: pushing an *isotropic* Gaussian away along its view
        ray shrinks its on-screen radius (anisotropic splats viewed
        obliquely can legitimately grow, so the property is tested on the
        clean case)."""
        rng = np.random.default_rng(seed)
        n = 8
        means, _, _ = make_inputs(rng, n, z_range=(2.0, 4.0))
        log_scales = np.repeat(
            rng.uniform(np.log(0.05), np.log(0.4), size=(n, 1)), 3, axis=1
        )
        quats = np.tile([1.0, 0.0, 0.0, 0.0], (n, 1))
        cam = front_camera()
        near, _ = project_geometry(means, log_scales, quats, cam)
        center = cam.center
        far_means = center + (means - center) * shrink  # along the view ray
        far, _ = project_geometry(far_means, log_scales, quats, cam)
        # allow the ceil-quantized radius to tie
        assert np.all(far.radii <= near.radii)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_conic_inverts_cov2d(self, seed):
        rng = np.random.default_rng(seed)
        means, log_scales, quats = make_inputs(rng, 12)
        geom, _ = project_geometry(means, log_scales, quats, front_camera())
        for i in range(12):
            conic = np.array(
                [
                    [geom.conics[i, 0], geom.conics[i, 1]],
                    [geom.conics[i, 1], geom.conics[i, 2]],
                ]
            )
            np.testing.assert_allclose(
                conic @ geom.cov2d[i], np.eye(2), atol=1e-8
            )
