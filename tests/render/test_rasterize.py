"""Unit tests for the forward rasterizer."""

import numpy as np
import pytest

from repro.render.rasterize import (
    RasterConfig,
    rasterize,
    splat_bboxes,
)


def single_splat(opacity=0.9, color=(1.0, 0.0, 0.0), sigma=4.0, center=(8.0, 8.0)):
    means2d = np.array([center], dtype=np.float64)
    inv = 1.0 / sigma**2
    conics = np.array([[inv, 0.0, inv]])
    colors = np.array([color], dtype=np.float64)
    opacities = np.array([opacity])
    depths = np.array([1.0])
    radii = np.array([3.0 * sigma])
    return means2d, conics, colors, opacities, depths, radii


class TestSingleSplat:
    def test_peak_at_center(self):
        args = single_splat()
        res = rasterize(*args, width=16, height=16)
        img = res.image
        cy, cx = np.unravel_index(np.argmax(img[:, :, 0]), img[:, :, 0].shape)
        # pixel centers are at +0.5, splat center (8, 8) -> pixels 7/8
        assert cx in (7, 8) and cy in (7, 8)

    def test_center_alpha_value(self):
        args = single_splat(opacity=0.5)
        res = rasterize(*args, width=16, height=16)
        # at distance 0.5px from center with sigma 4: alpha ~= 0.5 * exp(-tiny)
        peak = res.image[:, :, 0].max()
        assert 0.49 < peak <= 0.5

    def test_background_through_transparency(self):
        args = single_splat(opacity=0.0)
        bg = np.array([0.25, 0.5, 0.75])
        res = rasterize(*args, width=8, height=8, background=bg)
        np.testing.assert_allclose(res.image, np.broadcast_to(bg, (8, 8, 3)))
        np.testing.assert_allclose(res.final_transmittance, 1.0)

    def test_alpha_cap(self):
        args = single_splat(opacity=1.0)
        cfg = RasterConfig(alpha_max=0.99)
        res = rasterize(*args, width=16, height=16, config=cfg)
        assert res.image[:, :, 0].max() <= 0.99 + 1e-12
        assert res.final_transmittance.min() >= 0.01 - 1e-12


class TestOcclusion:
    def two_splats(self, front_first=True):
        means2d = np.array([[8.0, 8.0], [8.0, 8.0]])
        conics = np.tile(np.array([[1 / 16.0, 0.0, 1 / 16.0]]), (2, 1))
        colors = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        opacities = np.array([0.99, 0.99])
        depths = np.array([1.0, 2.0]) if front_first else np.array([2.0, 1.0])
        radii = np.array([12.0, 12.0])
        return means2d, conics, colors, opacities, depths, radii

    def test_front_occludes_back(self):
        res = rasterize(*self.two_splats(), width=16, height=16)
        center = res.image[8, 8]
        assert center[0] > 0.95  # red front splat dominates
        assert center[1] < 0.05

    def test_depth_order_not_input_order(self):
        """Swapping depths (not rows) flips which color wins."""
        res = rasterize(*self.two_splats(front_first=False), width=16, height=16)
        center = res.image[8, 8]
        assert center[1] > 0.95  # now green is in front
        assert center[0] < 0.05

    def test_transmittance_product(self):
        res = rasterize(*self.two_splats(), width=16, height=16)
        t = res.final_transmittance[8, 8]
        # pixel center (8.5, 8.5) vs splat center (8, 8): both splats apply
        # the same alpha, so T = (1 - alpha)^2 exactly
        alpha = min(0.99 * np.exp(-0.5 * (0.5**2 + 0.5**2) / 16.0), 0.99)
        assert t == pytest.approx((1 - alpha) ** 2, rel=1e-10)


class TestConservation:
    def test_premultiplied_colors_bounded(self):
        """With colors in [0,1] and any alphas, output stays in [0,1]."""
        rng = np.random.default_rng(0)
        n = 30
        means2d = rng.uniform(0, 32, size=(n, 2))
        sig = rng.uniform(1, 5, size=n)
        conics = np.stack([1 / sig**2, np.zeros(n), 1 / sig**2], axis=1)
        colors = rng.uniform(0, 1, size=(n, 3))
        opacities = rng.uniform(0, 1, size=n)
        depths = rng.uniform(1, 10, size=n)
        radii = 3 * sig
        res = rasterize(
            means2d, conics, colors, opacities, depths, radii, 32, 32,
            background=np.array([0.5, 0.5, 0.5]),
        )
        assert res.image.min() >= -1e-12
        assert res.image.max() <= 1.0 + 1e-12
        assert res.final_transmittance.min() >= 0
        assert res.final_transmittance.max() <= 1.0 + 1e-12

    def test_empty_input(self):
        res = rasterize(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), np.zeros(0), np.zeros(0), 8, 8,
        )
        np.testing.assert_allclose(res.image, 0.0)
        np.testing.assert_allclose(res.final_transmittance, 1.0)


class TestBBoxes:
    def test_clipping(self):
        means2d = np.array([[-5.0, 4.0], [100.0, 4.0], [4.0, 4.0]])
        radii = np.array([2.0, 2.0, 3.0])
        b = splat_bboxes(means2d, radii, width=8, height=8)
        # fully left of image: empty after clip
        assert b[0, 0] == 0 and b[0, 1] == 0
        # fully right: clipped to [8, 8)
        assert b[1, 0] == 8 and b[1, 1] == 8
        # interior: covers [1, 8) x [1, 8)
        assert (b[2] == [1, 8, 1, 8]).all()

    def test_offscreen_splat_skipped(self):
        args = list(single_splat(center=(-50.0, -50.0)))
        res = rasterize(*args, width=8, height=8)
        np.testing.assert_allclose(res.image, 0.0)

    def test_alpha_min_skips_faint_tail(self):
        args = single_splat(opacity=0.9, sigma=1.0, center=(4.0, 4.0))
        cfg = RasterConfig(alpha_min=1 / 255.0)
        res = rasterize(*args, width=32, height=32, config=cfg)
        # far corner receives exactly zero (threshold), not a tiny tail
        assert res.image[31, 31, 0] == 0.0
