"""Parity, determinism, and lifecycle tests of the fragment raster engine.

The vectorized engine is the oracle: for every shards x workers cell the
fragment engine must reproduce the image, the final transmittance, and
all five gradient arrays to ``atol=1e-9`` (the only difference is
compositing-rounding at run boundaries, ~1e-12), repeated runs must be
bit-identical, and the per-source path (``rasterize_fragment_sources``,
the training systems' gather-free entry point) must agree with a joint
render of the union.
"""

import numpy as np
import pytest

from repro.render import RasterConfig
from repro.render.engine import (
    rasterize_backward_vectorized,
    rasterize_vectorized,
)
from repro.render.fragment import (
    FragmentRasterResult,
    FragmentSource,
    rasterize_backward_fragment,
    rasterize_fragment,
    rasterize_fragment_sources,
)
from repro.render.parallel import shutdown_raster_pools

from test_engine_equivalence import make_splats

ATOL = 1e-9
SHARD_COUNTS = [1, 2, 4]
WORKER_COUNTS = [1, 2, 4]
GRAD_FIELDS = ("means2d", "conics", "colors", "opacities", "mean2d_abs")


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_raster_pools()


@pytest.fixture(scope="module")
def scene_args():
    return make_splats(400, 96, 80, 2)


def _cfg(shards, workers, **kw):
    return RasterConfig(
        engine="fragment", workers=workers, fragment_shards=shards, **kw
    )


def _empty_args(width=16, height=12):
    return (
        np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
        np.zeros(0), np.zeros(0), np.zeros(0), width, height,
    )


class TestForwardParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_image_and_transmittance(self, scene_args, shards, workers):
        bg = np.array([0.2, 0.4, 0.6])
        ref = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        out = rasterize_fragment(
            *scene_args, width=96, height=80, background=bg,
            config=_cfg(shards, workers),
        )
        assert isinstance(out, FragmentRasterResult)
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)
        np.testing.assert_allclose(
            out.final_transmittance, ref.final_transmittance, atol=ATOL,
            rtol=0,
        )

    def test_empty_scene(self):
        res = rasterize_fragment(
            *_empty_args(), background=np.array([0.1, 0.2, 0.3]),
            config=_cfg(2, 2),
        )
        np.testing.assert_allclose(res.image[:, :, 0], 0.1)
        np.testing.assert_allclose(res.final_transmittance, 1.0)

    def test_gradcheck_config(self, scene_args):
        """alpha_min=0 (the smooth gradcheck configuration) holds too."""
        ref = rasterize_vectorized(
            *scene_args, width=96, height=80,
            config=RasterConfig(alpha_min=0.0),
        )
        out = rasterize_fragment(
            *scene_args, width=96, height=80,
            config=_cfg(3, 1, alpha_min=0.0),
        )
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)

    def test_shards_default_to_workers(self, scene_args):
        """fragment_shards=0 slabs by the worker count."""
        ref = rasterize_fragment(
            *scene_args, width=96, height=80, config=_cfg(2, 1)
        )
        out = rasterize_fragment(
            *scene_args, width=96, height=80,
            config=RasterConfig(engine="fragment", workers=2),
        )
        np.testing.assert_array_equal(out.image, ref.image)


class TestBackwardParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_all_gradient_arrays(self, scene_args, shards, workers):
        bg = np.array([0.3, 0.1, 0.5])
        grad_image = np.random.default_rng(100).normal(size=(80, 96, 3))
        cfg = _cfg(shards, workers)
        ref_fwd = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        frag_fwd = rasterize_fragment(
            *scene_args, width=96, height=80, background=bg, config=cfg
        )
        ref = rasterize_backward_vectorized(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            ref_fwd, grad_image, background=bg,
        )
        out = rasterize_backward_fragment(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            frag_fwd, grad_image, background=bg, config=cfg,
        )
        for field in GRAD_FIELDS:
            np.testing.assert_allclose(
                getattr(out, field), getattr(ref, field), atol=ATOL, rtol=0,
                err_msg=field,
            )

    def test_empty_scene_grads(self):
        cfg = _cfg(2, 2)
        res = rasterize_fragment(*_empty_args(8, 8), config=cfg)
        grads = rasterize_backward_fragment(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), res, np.ones((8, 8, 3)), config=cfg,
        )
        assert grads.means2d.shape == (0, 2)

    def test_rejects_foreign_forward_result(self, scene_args):
        """The backward needs the fragment stash, not just any result."""
        vec = rasterize_vectorized(*scene_args, width=96, height=80)
        with pytest.raises(TypeError, match="FragmentRasterResult"):
            rasterize_backward_fragment(
                scene_args[0], scene_args[1], scene_args[2], scene_args[3],
                vec, np.ones((80, 96, 3)), config=_cfg(2, 1),
            )


class TestDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_repeated_runs_bit_identical(self, scene_args, workers):
        cfg = _cfg(3, workers)
        grad_image = np.random.default_rng(5).normal(size=(80, 96, 3))
        runs = []
        for _ in range(2):
            fwd = rasterize_fragment(
                *scene_args, width=96, height=80, config=cfg
            )
            bwd = rasterize_backward_fragment(
                scene_args[0], scene_args[1], scene_args[2], scene_args[3],
                fwd, grad_image, config=cfg,
            )
            runs.append((fwd, bwd))
        (f_a, b_a), (f_b, b_b) = runs
        np.testing.assert_array_equal(f_a.image, f_b.image)
        np.testing.assert_array_equal(
            f_a.final_transmittance, f_b.final_transmittance
        )
        for field in GRAD_FIELDS:
            np.testing.assert_array_equal(
                getattr(b_a, field), getattr(b_b, field), err_msg=field
            )

    def test_worker_count_invariant(self, scene_args):
        """At a fixed shard layout the fan-out width never shows: the
        shard tasks are deterministic and the merge reduces in a fixed
        order, so 1/2/4 workers are bit-identical."""
        grad_image = np.random.default_rng(6).normal(size=(80, 96, 3))
        results = []
        for workers in WORKER_COUNTS:
            cfg = _cfg(4, workers)
            fwd = rasterize_fragment(
                *scene_args, width=96, height=80, config=cfg
            )
            bwd = rasterize_backward_fragment(
                scene_args[0], scene_args[1], scene_args[2], scene_args[3],
                fwd, grad_image, config=cfg,
            )
            results.append((fwd, bwd))
        base_fwd, base_bwd = results[0]
        for fwd, bwd in results[1:]:
            np.testing.assert_array_equal(fwd.image, base_fwd.image)
            for field in GRAD_FIELDS:
                np.testing.assert_array_equal(
                    getattr(bwd, field), getattr(base_bwd, field),
                    err_msg=field,
                )


class TestSourcesPath:
    """rasterize_fragment_sources: the per-shard entry point the sharded
    training systems and the serving farm feed (no global gather)."""

    def _sources(self, scene_args, cuts):
        means2d, conics, colors, opacities, depths, radii = scene_args
        bounds = [0, *cuts, means2d.shape[0]]
        return [
            FragmentSource(
                means2d=means2d[a:b], conics=conics[a:b],
                colors=colors[a:b], opacities=opacities[a:b],
                depths=depths[a:b], radii=radii[a:b],
            )
            for a, b in zip(bounds, bounds[1:])
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_composite_matches_joint_render(self, scene_args, workers):
        bg = np.array([0.15, 0.25, 0.35])
        ref = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        sources = self._sources(scene_args, cuts=(130, 260))
        out = rasterize_fragment_sources(
            sources, 96, 80, background=bg,
            config=_cfg(0, workers),
        )
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)
        np.testing.assert_allclose(
            out.final_transmittance, ref.final_transmittance, atol=ATOL,
            rtol=0,
        )
        # shard k owns the concatenated row range [offsets[k], offsets[k+1])
        np.testing.assert_array_equal(out.offsets, [0, 130, 260, 400])

    def test_backward_grads_in_concatenated_row_space(self, scene_args):
        """Contiguous cuts concatenate back to the original row order, so
        the sources-path gradients must equal the joint gradients."""
        bg = np.array([0.3, 0.1, 0.5])
        grad_image = np.random.default_rng(42).normal(size=(80, 96, 3))
        cfg = _cfg(0, 1)
        ref_fwd = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        ref = rasterize_backward_vectorized(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            ref_fwd, grad_image, background=bg,
        )
        frag_fwd = rasterize_fragment_sources(
            self._sources(scene_args, cuts=(100, 250)), 96, 80,
            background=bg, config=cfg,
        )
        out = rasterize_backward_fragment(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            frag_fwd, grad_image, background=bg, config=cfg,
        )
        for field in GRAD_FIELDS:
            np.testing.assert_allclose(
                getattr(out, field), getattr(ref, field), atol=ATOL, rtol=0,
                err_msg=field,
            )

    def test_depth_interleaved_sources(self, scene_args):
        """Shards cut across depth (interleaved), not along it — the run
        decomposition must still composite exactly."""
        means2d, conics, colors, opacities, depths, radii = scene_args
        ref = rasterize_vectorized(*scene_args, width=96, height=80)
        # round-robin split: every shard spans the full depth range
        idx = [np.arange(k, means2d.shape[0], 3) for k in range(3)]
        sources = [
            FragmentSource(
                means2d=means2d[i], conics=conics[i], colors=colors[i],
                opacities=opacities[i], depths=depths[i], radii=radii[i],
            )
            for i in idx
        ]
        out = rasterize_fragment_sources(sources, 96, 80, config=_cfg(0, 1))
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)


class TestFloat32FastPath:
    def test_forward_close_to_float64(self, scene_args):
        ref = rasterize_vectorized(*scene_args, width=96, height=80)
        out = rasterize_fragment(
            *scene_args, width=96, height=80,
            config=_cfg(2, 1, dtype="float32"),
        )
        assert out.image.dtype == np.float32
        np.testing.assert_allclose(out.image, ref.image, atol=2e-3, rtol=0)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError, match="fragment_shards"):
            RasterConfig(fragment_shards=-1)
