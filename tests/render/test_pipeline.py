"""Tests for the high-level render()/render_backward() API."""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.gaussians import GaussianModel, layout
from repro.render import RasterConfig, render, render_backward


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(0)
    n = 40
    model = GaussianModel.from_point_cloud(
        rng.uniform(-1, 1, (n, 3)), rng.uniform(0, 1, (n, 3)),
        initial_opacity=0.6, dtype=np.float64,
    )
    model.sh[:, 1:, :] = rng.normal(scale=0.1, size=(n, 15, 3))
    cam = Camera.look_at([0, -3.5, 0.8], [0, 0, 0], width=40, height=30)
    return model, cam


class TestRenderAPI:
    def test_image_shape_and_range(self, scene):
        model, cam = scene
        res = render(model, cam)
        assert res.image.shape == (30, 40, 3)
        assert np.all(np.isfinite(res.image))
        assert res.raster.final_transmittance.shape == (30, 40)

    def test_background_color(self, scene):
        model, cam = scene
        bg = np.array([0.9, 0.1, 0.5])
        res = render(model, cam, background=bg)
        # corner pixels see mostly background
        t = res.raster.final_transmittance
        corner = np.unravel_index(np.argmax(t), t.shape)
        assert t[corner] > 0.5
        np.testing.assert_allclose(
            res.image[corner], bg * t[corner] + res.image[corner] - bg * t[corner]
        )

    @pytest.mark.parametrize("degree", [0, 1, 2, 3])
    def test_sh_degree_variants(self, scene, degree):
        model, cam = scene
        res = render(model, cam, sh_degree=degree)
        assert np.all(np.isfinite(res.image))

    def test_sh_degree_zero_is_view_independent(self, scene):
        """With degree 0, two cameras at different angles see the same
        color for the same Gaussian (only geometry differs)."""
        model, _ = scene
        cam_a = Camera.look_at([0, -3.5, 0.8], [0, 0, 0], width=16, height=16)
        cam_b = Camera.look_at([3.5, 0, 0.8], [0, 0, 0], width=16, height=16)
        res_a = render(model, cam_a, sh_degree=0)
        res_b = render(model, cam_b, sh_degree=0)
        ids = np.intersect1d(res_a.valid_ids, res_b.valid_ids)
        assert ids.size > 0
        pos_a = np.searchsorted(res_a.valid_ids, ids)
        pos_b = np.searchsorted(res_b.valid_ids, ids)
        np.testing.assert_allclose(
            res_a.proj.colors[pos_a], res_b.proj.colors[pos_b], atol=1e-12
        )

    def test_explicit_valid_ids(self, scene):
        model, cam = scene
        auto = render(model, cam)
        manual = render(model, cam, valid_ids=auto.valid_ids)
        np.testing.assert_array_equal(manual.image, auto.image)

    def test_subset_render_excludes_gaussians(self, scene):
        model, cam = scene
        auto = render(model, cam)
        half = auto.valid_ids[: auto.valid_ids.size // 2]
        partial = render(model, cam, valid_ids=half)
        # fewer Gaussians -> the images must differ somewhere
        assert not np.array_equal(partial.image, auto.image)

    def test_empty_model(self):
        model = GaussianModel(np.zeros((0, layout.PARAM_DIM)))
        cam = Camera.look_at([0, -2, 0], [0, 0, 0], width=8, height=8)
        res = render(model, cam)
        np.testing.assert_allclose(res.image, 0.0)
        assert res.valid_ids.size == 0

    def test_cull_stats_attached(self, scene):
        model, cam = scene
        res = render(model, cam)
        assert res.cull.num_total == model.num_gaussians
        assert res.cull.num_visible == res.valid_ids.size
        assert 0 < res.cull.active_ratio <= 1.0


class TestRenderBackwardAPI:
    def test_grad_shape(self, scene):
        model, cam = scene
        res = render(model, cam)
        back = render_backward(model, cam, res, np.ones_like(res.image))
        assert back.param_grads.shape == (res.valid_ids.size, layout.PARAM_DIM)
        assert back.mean2d_abs.shape == (res.valid_ids.size,)

    def test_zero_loss_grad_gives_zero_param_grads(self, scene):
        model, cam = scene
        res = render(model, cam)
        back = render_backward(model, cam, res, np.zeros_like(res.image))
        np.testing.assert_allclose(back.param_grads, 0.0)

    def test_grad_linearity(self, scene):
        """Backward is linear in the incoming image gradient."""
        model, cam = scene
        res = render(model, cam)
        rng = np.random.default_rng(1)
        g = rng.normal(size=res.image.shape)
        b1 = render_backward(model, cam, res, g)
        b2 = render_backward(model, cam, res, 2.0 * g)
        np.testing.assert_allclose(
            b2.param_grads, 2.0 * b1.param_grads, rtol=1e-10, atol=1e-12
        )


class TestCroppedCameraRendering:
    def test_crop_renders_image_slice(self, scene):
        """Rendering a cropped camera reproduces the corresponding columns
        of the full image (the splitting engine's core assumption)."""
        model, cam = scene
        full = render(model, cam, config=RasterConfig())
        x0, x1 = 12, 30
        sub = render(model, cam.crop(x0, x1), config=RasterConfig())
        np.testing.assert_allclose(
            sub.image, full.image[:, x0:x1], atol=1e-10
        )

    def test_two_crops_tile_the_image(self, scene):
        model, cam = scene
        full = render(model, cam)
        left = render(model, cam.crop(0, 20))
        right = render(model, cam.crop(20, cam.width))
        stitched = np.concatenate([left.image, right.image], axis=1)
        np.testing.assert_allclose(stitched, full.image, atol=1e-10)
