"""Parity, determinism, and lifecycle tests of the parallel raster engine.

The vectorized engine is the oracle: for every worker count the parallel
engine must reproduce the image, the final transmittance, and all five
gradient arrays to ``atol=1e-9`` (the only difference is prefix-scan
rounding at span boundaries, ~1e-12), repeated runs must be bit-identical,
and an end-to-end training trajectory must match. Also covers the span
partitioner, the float32 fast path, and the shared PersistentPool
lifecycle helper.
"""

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.render import RasterConfig
from repro.render.engine import (
    clip_isect_rects,
    rasterize_backward_vectorized,
    rasterize_vectorized,
    tile_intersections,
)
from repro.render.parallel import (
    PersistentPool,
    rasterize_backward_parallel,
    rasterize_parallel,
    shutdown_raster_pools,
)
from repro.render.rasterize import splat_bboxes
from repro.render.tiles import partition_spans

from test_engine_equivalence import make_splats

ATOL = 1e-9
WORKER_COUNTS = [1, 2, 4]
GRAD_FIELDS = ("means2d", "conics", "colors", "opacities", "mean2d_abs")


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_raster_pools()


@pytest.fixture(scope="module")
def scene_args():
    return make_splats(400, 96, 80, 2)


class TestForwardParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_image_and_transmittance(self, scene_args, workers):
        bg = np.array([0.2, 0.4, 0.6])
        ref = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        out = rasterize_parallel(
            *scene_args, width=96, height=80, background=bg,
            config=RasterConfig(engine="parallel", workers=workers),
        )
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)
        np.testing.assert_allclose(
            out.final_transmittance, ref.final_transmittance, atol=ATOL,
            rtol=0,
        )
        np.testing.assert_array_equal(out.order, ref.order)
        np.testing.assert_array_equal(out.bboxes, ref.bboxes)

    def test_empty_scene(self):
        res = rasterize_parallel(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), np.zeros(0), np.zeros(0), 16, 12,
            background=np.array([0.1, 0.2, 0.3]),
            config=RasterConfig(engine="parallel", workers=2),
        )
        np.testing.assert_allclose(res.image[:, :, 0], 0.1)
        np.testing.assert_allclose(res.final_transmittance, 1.0)

    def test_gradcheck_config(self, scene_args):
        """alpha_min=0 (the smooth gradcheck configuration) holds too."""
        cfg = RasterConfig(engine="parallel", workers=2, alpha_min=0.0)
        ref = rasterize_vectorized(
            *scene_args, width=96, height=80,
            config=RasterConfig(alpha_min=0.0),
        )
        out = rasterize_parallel(*scene_args, width=96, height=80, config=cfg)
        np.testing.assert_allclose(out.image, ref.image, atol=ATOL, rtol=0)


class TestBackwardParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_all_gradient_arrays(self, scene_args, workers):
        bg = np.array([0.3, 0.1, 0.5])
        grad_image = np.random.default_rng(100).normal(size=(80, 96, 3))
        cfg = RasterConfig(engine="parallel", workers=workers)
        ref_fwd = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        par_fwd = rasterize_parallel(
            *scene_args, width=96, height=80, background=bg, config=cfg
        )
        ref = rasterize_backward_vectorized(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            ref_fwd, grad_image, background=bg,
        )
        out = rasterize_backward_parallel(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            par_fwd, grad_image, background=bg, config=cfg,
        )
        for field in GRAD_FIELDS:
            np.testing.assert_allclose(
                getattr(out, field), getattr(ref, field), atol=ATOL, rtol=0,
                err_msg=field,
            )

    def test_empty_scene_grads(self):
        cfg = RasterConfig(engine="parallel", workers=2)
        res = rasterize_parallel(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), np.zeros(0), np.zeros(0), 8, 8, config=cfg,
        )
        grads = rasterize_backward_parallel(
            np.zeros((0, 2)), np.zeros((0, 3)), np.zeros((0, 3)),
            np.zeros(0), res, np.ones((8, 8, 3)), config=cfg,
        )
        assert grads.means2d.shape == (0, 2)


class TestDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_repeated_runs_bit_identical(self, scene_args, workers):
        cfg = RasterConfig(engine="parallel", workers=workers)
        grad_image = np.random.default_rng(5).normal(size=(80, 96, 3))
        runs = []
        for _ in range(2):
            fwd = rasterize_parallel(
                *scene_args, width=96, height=80, config=cfg
            )
            bwd = rasterize_backward_parallel(
                scene_args[0], scene_args[1], scene_args[2], scene_args[3],
                fwd, grad_image, config=cfg,
            )
            runs.append((fwd, bwd))
        (f_a, b_a), (f_b, b_b) = runs
        np.testing.assert_array_equal(f_a.image, f_b.image)
        np.testing.assert_array_equal(
            f_a.final_transmittance, f_b.final_transmittance
        )
        for field in GRAD_FIELDS:
            np.testing.assert_array_equal(
                getattr(b_a, field), getattr(b_b, field), err_msg=field
            )


class TestFloat32FastPath:
    """RasterConfig.dtype="float32": bounded-tolerance parity."""

    @pytest.mark.parametrize(
        "engine,workers", [("vectorized", 0), ("parallel", 2)]
    )
    def test_forward_close_to_float64(self, scene_args, engine, workers):
        from repro.render.engine import get_forward

        ref = rasterize_vectorized(*scene_args, width=96, height=80)
        cfg = RasterConfig(engine=engine, workers=workers, dtype="float32")
        out = get_forward(engine)(
            *scene_args, width=96, height=80, config=cfg
        )
        assert out.image.dtype == np.float32
        assert out.final_transmittance.dtype == np.float32
        np.testing.assert_allclose(out.image, ref.image, atol=2e-3, rtol=0)
        np.testing.assert_allclose(
            out.final_transmittance, ref.final_transmittance, atol=2e-3,
            rtol=0,
        )

    def test_backward_close_to_float64(self, scene_args):
        grad_image = np.random.default_rng(8).normal(size=(80, 96, 3))
        ref_fwd = rasterize_vectorized(*scene_args, width=96, height=80)
        ref = rasterize_backward_vectorized(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            ref_fwd, grad_image,
        )
        cfg = RasterConfig(dtype="float32")
        f32_fwd = rasterize_vectorized(
            *scene_args, width=96, height=80, config=cfg
        )
        out = rasterize_backward_vectorized(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            f32_fwd, grad_image, config=cfg,
        )
        # gradients are sums of O(1) pair terms; float32 keeps ~1e-3
        scale = max(np.abs(ref.colors).max(), 1.0)
        np.testing.assert_allclose(
            out.colors, ref.colors, atol=5e-3 * scale, rtol=0
        )

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            RasterConfig(dtype="float16")

    def test_loop_engines_ignore_dtype(self, scene_args):
        """The correctness oracles stay in the input precision."""
        from repro.render.rasterize import rasterize

        out = rasterize(
            *scene_args, width=96, height=80,
            config=RasterConfig(dtype="float32"),
        )
        assert out.image.dtype == np.float64


class TestSpanPartition:
    def _table(self, n=300, wh=64, seed=3):
        args = make_splats(n, wh, wh, seed)
        bboxes = splat_bboxes(args[0], args[5], wh, wh)
        tile_ids, sid, tiles_x, _ = tile_intersections(bboxes, wh, wh)
        return tile_ids, sid

    @pytest.mark.parametrize("num_spans", [1, 2, 4, 7])
    def test_spans_cover_and_cut_at_tile_boundaries(self, num_spans):
        tile_ids, _ = self._table()
        weights = np.ones_like(tile_ids)
        spans = partition_spans(tile_ids, weights, num_spans)
        assert spans[0][0] == 0 and spans[-1][1] == tile_ids.size
        assert len(spans) <= num_spans
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
            # a cut never splits one tile's segment
            assert tile_ids[stop - 1] != tile_ids[stop]

    def test_weighted_balance(self):
        tile_ids, _ = self._table(n=600)
        weights = np.ones(tile_ids.size, dtype=np.int64)
        spans = partition_spans(tile_ids, weights, 4)
        loads = [weights[a:b].sum() for a, b in spans]
        ideal = weights.sum() / 4
        # contiguous tile-boundary cuts cannot be perfect; 2x is ample
        assert max(loads) <= 2 * ideal

    def test_empty_and_single_tile(self):
        assert partition_spans(np.empty(0, np.int64), np.empty(0), 4) == []
        one_tile = np.zeros(5, dtype=np.int64)
        assert partition_spans(one_tile, np.ones(5), 4) == [(0, 5)]


class TestIsectEdgeCases:
    """Degenerate intersection tables through the span machinery: the
    partitioner, the clipped rects, and the pair builder must all agree
    on empty, single-tile, and concentrated inputs."""

    def _table(self, means2d, radii, width, height, depths=None):
        bboxes = splat_bboxes(means2d, radii, width, height)
        order = (
            None if depths is None else np.argsort(depths, kind="stable")
        )
        tile_ids, sid, tiles_x, _ = tile_intersections(
            bboxes, width, height, 16, order=order
        )
        return bboxes, tile_ids, sid, tiles_x

    def test_zero_intersections(self):
        """Every splat off-screen: empty table end to end."""
        means2d = np.array([[-40.0, -40.0], [200.0, 200.0]])
        radii = np.array([2.0, 2.0])
        bboxes, tile_ids, sid, tiles_x = self._table(means2d, radii, 64, 48)
        assert tile_ids.size == 0
        assert partition_spans(tile_ids, np.empty(0), 4) == []
        rx0, rx1, ry0, ry1 = clip_isect_rects(
            bboxes, tile_ids, sid, tiles_x, 16
        )
        assert rx0.size == rx1.size == ry0.size == ry1.size == 0
        from repro.render.engine import pairs_for_isects

        pairs = pairs_for_isects(
            means2d, np.full((2, 3), 1.0), np.full(2, 0.9), bboxes,
            tile_ids, sid, tiles_x, 64, 48, RasterConfig(), 16,
        )
        assert pairs.pixel.size == 0 and pairs.nz.size == 0

    def test_single_tile_image(self):
        """A 16x16 image is one tile: every intersection and pair lands
        in tile 0, and the rects clip to the image bounds."""
        from repro.render.engine import pairs_for_isects

        args = make_splats(20, 16, 16, 12)
        means2d, conics, _, opacities, depths, radii = args
        bboxes, tile_ids, sid, tiles_x = self._table(
            means2d, radii, 16, 16, depths
        )
        assert tiles_x == 1
        assert tile_ids.size > 0 and np.all(tile_ids == 0)
        rx0, rx1, ry0, ry1 = clip_isect_rects(
            bboxes, tile_ids, sid, tiles_x, 16
        )
        assert np.all(rx0 >= 0) and np.all(rx1 <= 16)
        assert np.all(ry0 >= 0) and np.all(ry1 <= 16)
        pairs = pairs_for_isects(
            means2d, conics, opacities, bboxes, tile_ids, sid, tiles_x,
            16, 16, RasterConfig(), 16,
        )
        assert np.all(pairs.pixel < 16 * 16)
        # segment structure: pixel is nz repeated by counts, ascending
        np.testing.assert_array_equal(
            pairs.pixel, np.repeat(pairs.nz, pairs.counts)
        )
        assert np.all(np.diff(pairs.nz) > 0)

    def test_all_pairs_in_one_tile(self):
        """Splats concentrated in one tile of a multi-tile image: the
        partitioner cannot cut inside it, so any requested span count
        collapses to one span."""
        rng = np.random.default_rng(13)
        means2d = rng.uniform(20, 28, size=(30, 2))  # tile (1, 1) of 64x48
        radii = np.full(30, 2.0)
        _, tile_ids, sid, tiles_x = self._table(means2d, radii, 64, 48)
        assert np.unique(tile_ids).size == 1
        spans = partition_spans(
            tile_ids, np.ones(tile_ids.size), 4
        )
        assert spans == [(0, tile_ids.size)]

    def test_span_count_exceeds_nonempty_tiles(self):
        """Asking for more spans than there are non-empty tiles: one span
        per tile at most, still covering the table exactly."""
        args = make_splats(12, 64, 48, 14)
        means2d, _, _, _, depths, radii = args
        _, tile_ids, sid, tiles_x = self._table(
            means2d, radii, 64, 48, depths
        )
        nonempty = np.unique(tile_ids).size
        spans = partition_spans(tile_ids, np.ones(tile_ids.size), 64)
        assert 0 < len(spans) <= nonempty
        assert spans[0][0] == 0 and spans[-1][1] == tile_ids.size
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start


class TestPersistentPool:
    def test_lazy_start_reuse_and_close(self):
        pool = PersistentPool(2)
        assert not pool.started
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.started
        assert pool.map(_square, [4]) == [16]  # same workers, no respawn
        pool.close()
        assert not pool.started
        pool.close()  # idempotent

    def test_map_after_close_restarts(self):
        pool = PersistentPool(2)
        pool.map(_square, [2])
        pool.close()
        assert pool.map(_square, [3]) == [9]
        pool.close()

    def test_failed_map_tears_down(self):
        pool = PersistentPool(2)
        with pytest.raises(ValueError):
            pool.map(_boom, [1])
        assert not pool.started  # no wedged workers left behind
        assert pool.map(_square, [5]) == [25]  # and it recovers
        pool.close()

    def test_context_manager(self):
        with PersistentPool(2) as pool:
            assert pool.map(_square, [6]) == [36]
        assert not pool.started

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PersistentPool(0)


def _square(x):
    return x * x


def _boom(_):
    raise ValueError("task failed")


class TestEndToEndTraining:
    """A GSScaleSystem trained on the parallel engine matches the
    vectorized trajectory (the cross-engine analogue of the existing
    TestSystemParity suite, across worker counts)."""

    @pytest.fixture(scope="class")
    def scene(self):
        return build_scene(
            SyntheticSceneConfig(
                num_points=150, width=32, height=24,
                num_train_cameras=4, num_test_cameras=1,
                altitude=8.0, fov_x_deg=55.0, seed=77,
            )
        )

    def _run(self, scene, raster, iters=6):
        system = create_system(
            scene.initial.copy(),
            GSScaleConfig(
                system="gsscale", scene_extent=scene.extent,
                ssim_lambda=0.0, mem_limit=1.0, seed=0, raster=raster,
            ),
        )
        losses = []
        for i in range(iters):
            rep = system.step(
                scene.train_cameras[i % 4], scene.train_images[i % 4]
            )
            losses.append(rep.loss)
        system.finalize()
        return np.array(losses), system.materialized_model().params

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_trajectory_matches_vectorized(self, scene, workers):
        ref_losses, ref_params = self._run(
            scene, RasterConfig(engine="vectorized")
        )
        losses, params = self._run(
            scene, RasterConfig(engine="parallel", workers=workers)
        )
        np.testing.assert_allclose(losses, ref_losses, atol=1e-9, rtol=0)
        # same Adam-sensitivity caveat as the vectorized parity suite
        np.testing.assert_allclose(params, ref_params, atol=2e-4, rtol=0)


class TestAdaptiveSpans:
    """Span oversubscription: the planner cuts ~3x workers spans for
    straggler smoothing, without changing numerics or determinism."""

    def test_pooled_pass_plans_oversubscribed_spans(self, scene_args):
        from repro.render.engine import clip_isect_rects
        from repro.render.rasterize import config_bboxes
        from repro.render.tiles import (
            SPAN_OVERSUBSCRIPTION,
            adaptive_span_count,
        )

        means2d, conics, colors, opacities, depths, radii = scene_args
        cfg = RasterConfig()
        bboxes = config_bboxes(means2d, radii, 96, 80, cfg)
        tile_ids, sid, tiles_x, _ = tile_intersections(
            bboxes, 96, 80, 16, order=np.argsort(depths, kind="stable")
        )
        rx0, rx1, ry0, ry1 = clip_isect_rects(bboxes, tile_ids, sid, tiles_x, 16)
        weights = (rx1 - rx0) * (ry1 - ry0)
        for workers in (2, 4):
            spans = partition_spans(
                tile_ids, weights, adaptive_span_count(workers)
            )
            assert len(spans) > workers  # smoothing needs spare spans
            assert len(spans) <= workers * SPAN_OVERSUBSCRIPTION
        assert adaptive_span_count(0) == adaptive_span_count(1) == 1

    @pytest.mark.parametrize("workers", [2, 4])
    def test_oversubscribed_parity_and_determinism(self, scene_args, workers):
        bg = np.array([0.3, 0.1, 0.5])
        cfg = RasterConfig(engine="parallel", workers=workers)
        ref_fwd = rasterize_vectorized(
            *scene_args, width=96, height=80, background=bg
        )
        fwd = rasterize_parallel(
            *scene_args, width=96, height=80, background=bg, config=cfg
        )
        np.testing.assert_allclose(fwd.image, ref_fwd.image, atol=ATOL, rtol=0)
        grad = np.full((80, 96, 3), 0.5)
        ref_bwd = rasterize_backward_vectorized(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            ref_fwd, grad, background=bg,
        )
        bwd = rasterize_backward_parallel(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            fwd, grad, background=bg, config=cfg,
        )
        for field in GRAD_FIELDS:
            np.testing.assert_allclose(
                getattr(bwd, field), getattr(ref_bwd, field), atol=ATOL,
                rtol=0,
            )
        # bit-exact repeatability with the oversubscribed plan
        again = rasterize_parallel(
            *scene_args, width=96, height=80, background=bg, config=cfg
        )
        np.testing.assert_array_equal(again.image, fwd.image)
        bwd_again = rasterize_backward_parallel(
            scene_args[0], scene_args[1], scene_args[2], scene_args[3],
            again, grad, background=bg, config=cfg,
        )
        for field in GRAD_FIELDS:
            np.testing.assert_array_equal(
                getattr(bwd_again, field), getattr(bwd, field)
            )
