"""Tests for two-stage frustum culling."""

import numpy as np

from repro.cameras import Camera
from repro.render import frustum_cull


def make_inputs(means, scale=0.1):
    n = means.shape[0]
    log_scales = np.full((n, 3), np.log(scale))
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    return means.astype(np.float64), log_scales, quats


def front_camera(width=64, height=48, near=0.5, far=50.0):
    return Camera.look_at(
        [0.0, -10.0, 0.0], [0.0, 0.0, 0.0], width=width, height=height,
        near=near, far=far,
    )


class TestDepthStage:
    def test_behind_camera_culled(self):
        cam = front_camera()
        means, ls, q = make_inputs(np.array([[0.0, 0.0, 0.0], [0.0, -20.0, 0.0]]))
        res = frustum_cull(means, ls, q, cam)
        assert list(res.valid_ids) == [0]
        assert res.num_in_depth == 1

    def test_beyond_far_culled(self):
        cam = front_camera(far=15.0)
        means, ls, q = make_inputs(np.array([[0.0, 0.0, 0.0], [0.0, 100.0, 0.0]]))
        res = frustum_cull(means, ls, q, cam)
        assert list(res.valid_ids) == [0]

    def test_inside_near_culled(self):
        cam = front_camera(near=5.0)
        # 2 units in front of the camera -> inside near plane
        means, ls, q = make_inputs(np.array([[0.0, -8.0, 0.0]]))
        res = frustum_cull(means, ls, q, cam)
        assert res.num_visible == 0


class TestImageStage:
    def test_off_screen_culled(self):
        cam = front_camera()
        # far to the side: passes depth stage, fails image bounds
        means, ls, q = make_inputs(
            np.array([[0.0, 0.0, 0.0], [500.0, 0.0, 0.0]])
        )
        res = frustum_cull(means, ls, q, cam)
        assert list(res.valid_ids) == [0]
        assert res.num_in_depth == 2

    def test_large_gaussian_overlapping_edge_kept(self):
        cam = front_camera()
        # center projects off-screen but the 3-sigma splat reaches in
        edge_x = 10.5  # just outside the horizontal frustum at y=0
        means, ls, q = make_inputs(np.array([[edge_x, 0.0, 0.0]]), scale=3.0)
        res = frustum_cull(means, ls, q, cam)
        assert res.num_visible == 1

    def test_tiny_gaussian_outside_edge_culled(self):
        cam = front_camera()
        means, ls, q = make_inputs(np.array([[30.0, 0.0, 0.0]]), scale=0.01)
        res = frustum_cull(means, ls, q, cam)
        assert res.num_visible == 0


class TestStats:
    def test_active_ratio(self):
        cam = front_camera()
        rng = np.random.default_rng(0)
        # half the points behind the camera
        front = rng.uniform(-1, 1, size=(50, 3))
        back = front.copy()
        back[:, 1] = -30.0
        means, ls, q = make_inputs(np.concatenate([front, back]))
        res = frustum_cull(means, ls, q, cam)
        assert res.num_total == 100
        assert res.active_ratio == res.num_visible / 100
        assert 0.4 <= res.active_ratio <= 0.5

    def test_empty_scene(self):
        cam = front_camera()
        means, ls, q = make_inputs(np.zeros((0, 3)))
        res = frustum_cull(means, ls, q, cam)
        assert res.num_visible == 0
        assert res.active_ratio == 0.0

    def test_all_behind(self):
        cam = front_camera()
        means, ls, q = make_inputs(np.array([[0.0, -30.0, 0.0]]))
        res = frustum_cull(means, ls, q, cam)
        assert res.num_visible == 0
        assert res.valid_ids.size == 0

    def test_valid_ids_sorted_unique(self):
        cam = front_camera()
        rng = np.random.default_rng(1)
        means, ls, q = make_inputs(rng.uniform(-2, 2, size=(200, 3)))
        res = frustum_cull(means, ls, q, cam)
        assert np.all(np.diff(res.valid_ids) > 0)
