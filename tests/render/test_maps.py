"""Tests for depth/alpha auxiliary render maps."""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.gaussians import GaussianModel
from repro.render.maps import render_depth_alpha


def plane_of_gaussians(y, n_side=5, spread=1.2, opacity=3.0, scale=0.35):
    """A grid of opaque Gaussians on the plane at world-space y."""
    xs = np.linspace(-spread, spread, n_side)
    zs = np.linspace(-spread, spread, n_side)
    pts = np.array([[x, y, z] for x in xs for z in zs])
    n = len(pts)
    return GaussianModel.from_attributes(
        means=pts,
        log_scales=np.full((n, 3), np.log(scale)),
        quats=np.tile([1.0, 0, 0, 0], (n, 1)),
        opacity_logits=np.full(n, opacity),
        sh=np.zeros((n, 16, 3)),
        dtype=np.float64,
    )


@pytest.fixture
def camera():
    return Camera.look_at([0.0, -4.0, 0.0], [0.0, 0.0, 0.0],
                          width=32, height=32, fov_x_deg=50.0)


class TestDepth:
    def test_plane_depth_value(self, camera):
        model = plane_of_gaussians(y=0.0)
        res = render_depth_alpha(model, camera)
        center = res.depth[16, 16]
        # the plane sits 4 units in front of the camera
        assert center == pytest.approx(4.0, abs=0.2)

    def test_nearer_plane_wins(self, camera):
        near_plane = plane_of_gaussians(y=-1.0)  # 3 units away
        far_plane = plane_of_gaussians(y=2.0)  # 6 units away
        both = near_plane.append(far_plane)
        res = render_depth_alpha(both, camera)
        assert res.depth[16, 16] == pytest.approx(3.0, abs=0.25)

    def test_uncovered_pixels_zero(self, camera):
        model = plane_of_gaussians(y=0.0, n_side=1, spread=0.0, scale=0.1)
        res = render_depth_alpha(model, camera)
        assert res.depth[0, 0] == 0.0
        assert res.alpha[0, 0] == 0.0

    def test_unnormalized_depth_premultiplied(self, camera):
        model = plane_of_gaussians(y=0.0)
        raw = render_depth_alpha(model, camera, normalize=False)
        norm = render_depth_alpha(model, camera, normalize=True)
        covered = norm.alpha > 0.5
        np.testing.assert_allclose(
            raw.depth[covered] / norm.alpha[covered],
            norm.depth[covered],
            rtol=1e-9,
        )


class TestAlpha:
    def test_alpha_in_unit_range(self, camera):
        model = plane_of_gaussians(y=0.0)
        res = render_depth_alpha(model, camera)
        assert res.alpha.min() >= 0.0
        assert res.alpha.max() <= 1.0

    def test_opaque_plane_near_one(self, camera):
        model = plane_of_gaussians(y=0.0, opacity=6.0)
        res = render_depth_alpha(model, camera)
        assert res.alpha[16, 16] > 0.95

    def test_alpha_matches_color_transmittance(self, camera):
        """alpha map == 1 - final transmittance of the color pass."""
        from repro.render import render

        model = plane_of_gaussians(y=0.0)
        res_rgb = render(model, camera)
        res_da = render_depth_alpha(
            model, camera, valid_ids=res_rgb.valid_ids
        )
        np.testing.assert_allclose(
            res_da.alpha, 1.0 - res_rgb.raster.final_transmittance, atol=1e-12
        )

    def test_empty_model(self, camera):
        model = GaussianModel(np.zeros((0, 59)))
        res = render_depth_alpha(model, camera)
        np.testing.assert_allclose(res.alpha, 0.0)
        np.testing.assert_allclose(res.depth, 0.0)
