"""Isolate the process-wide tracer/registry around every telemetry test.

Telemetry is deliberately process-global (one buffer, one epoch), so
tests must not leak an installed tracer into the rest of the suite —
spans recorded by an unrelated training test would otherwise land in a
stale ring buffer and instrumented hot paths would stop being no-ops.
"""

import pytest

from repro.telemetry import metrics, trace


@pytest.fixture(autouse=True)
def isolated_telemetry():
    prev = trace.uninstall()
    metrics.reset_registry()
    yield
    trace.uninstall()
    trace.set_tracer(prev)
    metrics.reset_registry()
