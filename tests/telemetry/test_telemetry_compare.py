"""Measured-vs-modeled rollup tests for repro.telemetry.compare."""

import math

import pytest

from repro.telemetry import export, trace
from repro.telemetry.compare import (
    PHASES,
    compare_breakdowns,
    format_table,
    measured_breakdown,
    modeled_breakdown,
    phase_for,
)


class TestPhaseMapping:
    @pytest.mark.parametrize("name,phase", [
        ("train/cull", "cull"),
        ("train/stage", "h2d"),
        ("train/forward", "fwd_bwd"),
        ("pool/backward", "fwd_bwd"),
        ("train/unstage", "d2h"),
        ("train/commit", "optimizer"),
        ("train/aggregate", "composite"),
        ("page/in", "disk"),
        ("page/writeback", "disk"),
        ("train/step", None),   # the envelope, never double counted
        ("serve/tick", None),   # outside the iteration vocabulary
    ])
    def test_phase_for(self, name, phase):
        assert phase_for(name) == phase

    def test_nested_pool_wrappers_excluded(self):
        events = [
            ("pool/map", "pool", 0, 0.0, 1.0, None),
            ("pool/forward", "pool", 0, 0.1, 0.4, None),
        ]
        out = measured_breakdown(events)
        assert out["fwd_bwd"] == pytest.approx(0.4)


class TestMeasuredBreakdown:
    def test_from_tracer_divides_by_iterations(self):
        tracer = trace.install()
        for _ in range(4):
            tracer.record_rel("train/forward", 0.0, 0.02, cat="train")
            tracer.record_rel("page/in", 0.0, 0.01, cat="page")
        out = measured_breakdown(tracer, iterations=4)
        assert out["fwd_bwd"] == pytest.approx(0.02)
        assert out["disk"] == pytest.approx(0.01)
        assert out["cull"] == 0.0

    def test_from_chrome_doc_uses_measured_pid_only(self):
        tracer = trace.install()
        tracer.record_rel("train/forward", 0.0, 0.5, cat="train")
        doc = export.to_chrome_trace(tracer)
        doc["traceEvents"].append({  # a modeled event must be ignored
            "name": "train/forward", "ph": "X", "pid": 1, "tid": 1,
            "ts": 0.0, "dur": 9e6, "cat": "gpu",
        })
        out = measured_breakdown(doc)
        assert out["fwd_bwd"] == pytest.approx(0.5, rel=1e-6)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            measured_breakdown([], iterations=0)


class TestModeledAndDiff:
    def test_modeled_breakdown_covers_phases(self):
        from repro.sim import PLATFORMS

        out = modeled_breakdown(
            "outofcore", sorted(PLATFORMS)[0], 10_000, 0.3, 64 * 64,
            num_shards=4, resident_shards=1,
        )
        assert set(out) == set(PHASES)
        assert sum(out.values()) > 0.0

    def test_compare_rows(self):
        measured = dict.fromkeys(PHASES, 0.0)
        modeled = dict.fromkeys(PHASES, 0.0)
        measured["disk"] = 0.2
        modeled["disk"] = 0.1
        modeled["h2d"] = 0.05
        rows = {r["phase"]: r for r in compare_breakdowns(measured, modeled)}
        assert rows["disk"]["delta_s"] == pytest.approx(0.1)
        assert rows["disk"]["ratio"] == pytest.approx(2.0)
        assert rows["h2d"]["ratio"] == pytest.approx(0.0)
        assert rows["cull"]["ratio"] == 1.0  # 0/0: no work on either side
        measured["cull"] = 0.1
        rows = {r["phase"]: r for r in compare_breakdowns(measured, modeled)}
        assert math.isinf(rows["cull"]["ratio"])

    def test_format_table_lists_every_phase(self):
        rows = compare_breakdowns(
            dict.fromkeys(PHASES, 0.001), dict.fromkeys(PHASES, 0.002)
        )
        table = format_table(rows)
        for phase in PHASES:
            assert phase in table


class TestEndToEndRollup:
    def test_traced_training_step_yields_phase_budget(self):
        """A real traced step rolls up into non-zero fwd_bwd/h2d/optimizer."""
        from repro.core import GSScaleConfig, create_system
        from repro.datasets import SyntheticSceneConfig, build_scene

        scene = build_scene(SyntheticSceneConfig(
            num_points=120, width=24, height=18, num_train_cameras=2, seed=9,
        ))
        config = GSScaleConfig(
            system="outofcore", num_shards=2, resident_shards=1,
            scene_extent=scene.extent, telemetry=True, seed=0,
        )
        system = create_system(scene.initial.copy(), config)
        system.step(scene.train_cameras[0], scene.train_images[0])
        system.finalize()
        out = measured_breakdown(trace.get_tracer())
        assert out["fwd_bwd"] > 0.0
        assert out["h2d"] > 0.0
        assert out["optimizer"] > 0.0
        assert out["disk"] > 0.0

    def test_compare_trace_cli_runs(self, tmp_path, capsys):
        import importlib.util
        import os

        tracer = trace.install()
        tracer.record_rel("train/forward", 0.0, 0.01, cat="train")
        path = tmp_path / "trace.json"
        export.write_chrome_trace(tracer, path)
        modeled = tmp_path / "modeled.json"
        modeled.write_text('{"fwd_bwd": 0.005}', encoding="utf-8")

        repo = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        spec = importlib.util.spec_from_file_location(
            "compare_trace_cli", os.path.join(repo, "tools", "compare_trace.py")
        )
        cli = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cli)
        rc = cli.main([
            str(path), "--modeled-json", str(modeled),
            "--json", str(tmp_path / "rows.json"),
        ])
        assert rc == 0
        assert "fwd_bwd" in capsys.readouterr().out
        assert (tmp_path / "rows.json").exists()
