"""Tracer unit tests: span recording, nesting, threads, remap, no-op mode."""

import sys
import threading
import time

from repro.telemetry import trace
from repro.telemetry.trace import SpanEvent, Tracer, _NULL_SPAN


class TestSpanRecording:
    def test_span_records_name_cat_and_duration(self):
        tracer = trace.install()
        with trace.span("train/forward", "train"):
            time.sleep(0.002)
        (ev,) = tracer.events()
        assert ev.name == "train/forward"
        assert ev.cat == "train"
        assert ev.tid == threading.get_ident()
        assert ev.dur >= 0.002
        assert ev.start >= 0.0

    def test_nested_spans_close_inner_first(self):
        tracer = trace.install()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = tracer.events()
        assert (inner.name, outer.name) == ("inner", "outer")
        # the outer span brackets the inner one on the timeline
        assert outer.start <= inner.start
        assert outer.start + outer.dur >= inner.start + inner.dur

    def test_span_attrs_flow_through(self):
        tracer = trace.install()
        with trace.span("page/in", "page", bytes=4096):
            pass
        (ev,) = tracer.events()
        assert ev.attrs == {"bytes": 4096}

    def test_begin_end_brackets_non_lexical_scopes(self):
        tracer = trace.install()
        tok = trace.begin("pool/map", "pool")
        with trace.span("pool/task"):
            pass
        trace.end(tok)
        task, outer = tracer.events()
        assert outer.name == "pool/map"
        assert outer.start <= task.start

    def test_span_records_on_exception(self):
        tracer = trace.install()
        try:
            with trace.span("train/step"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [ev.name for ev in tracer.events()] == ["train/step"]


class TestThreadAttribution:
    def test_spans_from_threads_carry_their_ident(self):
        tracer = trace.install()
        seen = {}

        def worker():
            seen["tid"] = threading.get_ident()
            trace.name_current_thread("bg-worker")
            with trace.span("page/prefetch", "page"):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        with trace.span("train/step"):
            pass
        by_name = {ev.name: ev for ev in tracer.events()}
        assert by_name["page/prefetch"].tid == seen["tid"]
        assert by_name["train/step"].tid == threading.get_ident()
        # the lane stays labelled even though the thread has exited
        assert tracer.thread_names[seen["tid"]] == "bg-worker"


class TestRingBuffer:
    def test_wraps_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(7):
            tracer.record_rel(f"s{i}", float(i), 0.1)
        events = tracer.events()
        assert [ev.name for ev in events] == ["s3", "s4", "s5", "s6"]
        assert tracer.dropped == 3

    def test_events_returns_oldest_first_copy(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record_rel(f"s{i}", float(i), 0.1)
        first = tracer.events()
        first.append(None)  # mutating the copy must not touch the ring
        assert [ev.name for ev in tracer.events()] == ["s2", "s3", "s4"]

    def test_clear_resets_events_and_drops(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.record_rel(f"s{i}", float(i), 0.1)
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0


class TestShippedSpanRemap:
    SHIPPED = [
        ("pool/forward", "pool", 0.000, 0.010),
        ("train/forward", "train", 0.002, 0.004),
    ]

    def test_remap_is_deterministic(self):
        a, b = Tracer(), Tracer()
        b.epoch = a.epoch  # same epoch -> same inputs end to end
        anchor = a.epoch + 1.5
        a.record_shipped(self.SHIPPED, anchor, "pool-worker-0")
        b.record_shipped(self.SHIPPED, anchor, "pool-worker-0")
        assert a.events() == b.events()

    def test_remap_rebases_onto_anchor_lane(self):
        tracer = Tracer()
        anchor = tracer.epoch + 2.0
        tracer.record_shipped(self.SHIPPED, anchor, "pool-worker-3")
        outer, inner = tracer.events()
        assert outer == SpanEvent(
            "pool/forward", "pool", "pool-worker-3", 2.0, 0.010, None
        )
        assert inner.start == 2.002
        assert inner.tid == "pool-worker-3"

    def test_traced_task_ships_spans_with_result(self):
        result, shipped = trace.traced_task((_double_with_span, 21))
        assert result == 42
        names = [name for name, _cat, _start, _dur in shipped]
        assert names == ["inner/work", "pool/double_with_span"]
        for _name, _cat, start, dur in shipped:
            assert start >= 0.0 and dur >= 0.0
        # the worker-local tracer never leaks into this process
        assert trace.get_tracer() is None


class TestDisabledMode:
    def test_span_returns_shared_null_singleton(self):
        assert trace.get_tracer() is None
        assert trace.span("train/forward", "train") is _NULL_SPAN
        assert trace.span("anything") is _NULL_SPAN

    def test_begin_end_are_noops(self):
        assert trace.begin("pool/map") is None
        trace.end(None)  # must not raise

    def test_enabled_reflects_install_state(self):
        assert not trace.enabled()
        tracer = trace.install()
        assert trace.enabled()
        tracer.enabled = False
        assert not trace.enabled()
        tracer.enabled = True
        trace.uninstall()
        assert not trace.enabled()

    def test_disabled_span_allocates_nothing(self):
        # warm up so interned strings / bytecode caches settle
        for _ in range(64):
            with trace.span("hot/path"):
                pass
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            with trace.span("hot/path"):
                pass
        grown = sys.getallocatedblocks() - before
        # no per-call allocation: any residue is interpreter noise, far
        # below one block per span
        assert grown < 50

    def test_install_is_idempotent(self):
        a = trace.install()
        b = trace.install()
        assert a is b


def _double_with_span(x):
    with trace.span("inner/work", "app"):
        return 2 * x
