"""Metrics registry tests: percentiles vs numpy, adapters vs legacy counters."""

import numpy as np
import pytest

from repro.core.systems import TransferLedger
from repro.telemetry import metrics
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    aggregate_counts,
    ledger_counts,
    mirror_ledger,
    mirror_pool_faults,
    mirror_serve_stats,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("page_ins", store="disk")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("live_bytes")
        g.set(100)
        g.inc(50)
        g.dec(25)
        assert g.value == 125

    def test_same_name_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("n", a="1", b="2") is reg.counter("n", b="2", a="1")
        assert reg.counter("n", a="1") is not reg.counter("n", a="2")


class TestHistogramPercentiles:
    @pytest.mark.parametrize("q", [0, 25, 50, 95, 99, 100])
    def test_matches_numpy_linear_quantile(self, q):
        rng = np.random.default_rng(11)
        samples = rng.uniform(0.001, 0.5, size=1000)
        hist = Histogram("latency_s")
        for s in samples:
            hist.observe(float(s))
        expected = float(np.quantile(samples, q / 100, method="linear"))
        assert hist.percentile(q) == pytest.approx(expected, abs=1e-12)

    def test_summary_fields(self):
        hist = Histogram("latency_s")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5
        assert s["p50"] == 2.5

    def test_sample_cap_keeps_count_and_sum_exact(self):
        hist = Histogram("latency_s", max_samples=8)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.sum == float(sum(range(100)))


class TestAggregateCounts:
    def test_sums_across_mappings(self):
        out = aggregate_counts([{"a": 1, "b": 2}, {"a": 3, "c": 5}])
        assert out == {"a": 4, "b": 2, "c": 5}

    def test_explicit_keys_zero_fill(self):
        out = aggregate_counts([{"a": 1}], keys=("a", "b"))
        assert out == {"a": 1, "b": 0}

    def test_empty_input(self):
        assert aggregate_counts([], keys=("a",)) == {"a": 0}


class TestLegacyAdapters:
    """Registry mirrors must equal the legacy counters bit for bit."""

    def test_ledger_counts_matches_dataclass_fields(self):
        ledger = TransferLedger()
        ledger.h2d_bytes = 1234
        ledger.page_in_count = 7
        ledger.page_out_disk_bytes = 99
        counts = ledger_counts(ledger)
        assert counts == ledger.counts()
        for key, value in counts.items():
            assert value == getattr(ledger, key)

    def test_mirror_ledger_gauges(self):
        reg = MetricsRegistry()
        ledger = TransferLedger()
        ledger.d2h_bytes = 4096
        mirror_ledger(reg, ledger, prefix="train")
        for key, value in ledger.counts().items():
            assert reg.gauge(f"train/ledger/{key}").value == value

    def test_mirror_pool_faults(self):
        reg = MetricsRegistry()
        stats = {"worker_deaths": 2, "respawns": 2, "retries": 5}
        assert mirror_pool_faults(reg, stats) == stats
        for key, value in stats.items():
            assert reg.gauge(f"pool/{key}").value == value

    def test_mirror_serve_stats(self):
        from repro.serve.service import ServeStats

        reg = MetricsRegistry()
        stats = ServeStats()
        stats.requests = 12
        stats.cache_hits = 3
        mirrored = mirror_serve_stats(reg, stats)
        assert mirrored == stats.as_dict()
        for key, value in stats.as_dict().items():
            assert reg.gauge(f"serve/{key}").value == value


class TestRegistrySnapshot:
    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("reads", store="disk").inc(2)
        reg.gauge("live").set(10)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert {c["name"] for c in snap["counters"]} == {"reads"}
        assert snap["counters"][0]["labels"] == {"store": "disk"}
        assert {g["name"] for g in snap["gauges"]} == {"live"}
        assert snap["histograms"][0]["count"] == 1

    def test_module_registry_reset(self):
        reg = metrics.get_registry()
        reg.counter("x").inc()
        metrics.reset_registry()
        assert metrics.get_registry().counters() == []
