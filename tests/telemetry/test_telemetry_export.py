"""Exporter tests: Chrome trace schema parity with sim, Prometheus text."""

import json
import threading

from repro.telemetry import export, trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


def _traced_run() -> Tracer:
    tracer = trace.install()
    with trace.span("train/step", "train"):
        with trace.span("train/forward", "train"):
            pass
    tracer.record_rel("page/in", 0.5, 0.01, cat="page",
                      tid="pool-worker-0", attrs={"bytes": 4096})
    return tracer


class TestChromeTrace:
    def test_round_trips_through_json(self):
        doc = export.to_chrome_trace(_traced_run())
        again = json.loads(json.dumps(doc))
        assert again == doc

    def test_schema_matches_sim_trace(self):
        """Measured docs carry the exact keys the modeled exporter emits."""
        doc = export.to_chrome_trace(_traced_run())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        for ev in spans:
            assert {"name", "ph", "pid", "tid", "ts", "dur", "cat"} <= set(ev)
            assert ev["pid"] == export.MEASURED_PID
            assert ev["dur"] >= 0.01  # sim's min visible duration
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in metas}

    def test_lane_numbering_main_first_then_workers(self):
        doc = export.to_chrome_trace(_traced_run())
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names["main"] == 1
        assert names["pool-worker-0"] == 2

    def test_attrs_become_args(self):
        doc = export.to_chrome_trace(_traced_run())
        (page_in,) = [e for e in doc["traceEvents"] if e["name"] == "page/in"]
        assert page_in["args"] == {"bytes": 4096}

    def test_named_thread_lane_survives_thread_exit(self):
        tracer = trace.install()

        def worker():
            trace.name_current_thread("gsscale-prefetch")
            with trace.span("page/prefetch", "page"):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        doc = export.to_chrome_trace(tracer)
        lane_names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "gsscale-prefetch" in lane_names

    def test_merge_keeps_both_pids(self, tmp_path):
        modeled = {
            "traceEvents": [
                {"name": "h2d", "ph": "X", "pid": 1, "tid": 2,
                 "ts": 0.0, "dur": 5.0, "cat": "pcie"},
            ],
            "displayTimeUnit": "ms",
        }
        path = tmp_path / "trace.json"
        doc = export.write_chrome_trace(_traced_run(), path, modeled=modeled)
        with open(path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == doc
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, export.MEASURED_PID}


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("page_ins", store="disk").inc(3)
        reg.gauge("live_bytes").set(1024)
        hist = reg.histogram("serve/latency_s")
        for v in (0.01, 0.02, 0.03):
            hist.observe(v)
        text = export.to_prometheus(reg)
        assert '# TYPE page_ins counter' in text
        assert 'page_ins{store="disk"} 3' in text
        assert "# TYPE live_bytes gauge" in text
        assert "# TYPE serve_latency_s summary" in text
        assert 'serve_latency_s{quantile="0.5"} 0.02' in text
        assert "serve_latency_s_count 3" in text
        assert text.endswith("\n")

    def test_metric_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("page/in.bytes").inc()
        text = export.to_prometheus(reg)
        assert "page_in_bytes 1" in text

    def test_empty_histogram_exports_nan_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        text = export.to_prometheus(reg)
        assert 'lat{quantile="0.5"} NaN' in text
        assert "lat_count 0" in text

    def test_json_dump_matches_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        path = tmp_path / "metrics.json"
        doc = export.write_metrics_json(reg, path)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == doc
        assert doc == reg.snapshot()

    def test_write_prometheus_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("x").set(1.5)
        path = tmp_path / "metrics.prom"
        text = export.write_prometheus(reg, path)
        assert path.read_text(encoding="utf-8") == text
